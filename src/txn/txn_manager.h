// Copyright 2026 The ccr Authors.
//
// TxnManager: transaction lifecycle, atomic commitment across objects (the
// paper's "commit at one or more objects, never commit-and-abort"), deadlock
// victim handling, and the retry loop client code uses.
//
// Contract: a transaction is driven by one thread. After Execute returns a
// retryable error (kConflict / kDeadlock / kTimedOut), the transaction MUST
// be aborted, not reused; RunTransaction handles this (abort + fresh
// transaction + backoff).

#ifndef CCR_TXN_TXN_MANAGER_H_
#define CCR_TXN_TXN_MANAGER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "txn/atomic_object.h"
#include "txn/journal_io.h"

namespace ccr {

class GroupCommitPipeline;
class Journal;
struct RecoveryReport;

struct TxnManagerOptions {
  bool record_history = true;
  // How the recorder takes events off the objects' hot paths: sharded
  // buffers validated at snapshot time (default), or the eager global-mutex
  // oracle that validates every append (see history_recorder.h).
  RecorderMode recorder_mode = RecorderMode::kSharded;
  DeadlockPolicy policy = DeadlockPolicy::kDetect;
  WakeupMode wakeup = WakeupMode::kEventDriven;
  std::chrono::milliseconds lock_timeout{500};
  int max_retries = 1000;
};

// Aggregate outcome counters.
struct ManagerStats {
  uint64_t begun = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t retries = 0;     // retryable failures that were retried
  uint64_t kills = 0;       // deadlock wounds/victims issued
};

struct RestartOptions {
  // Threads replaying the post-checkpoint tail. The tail is bucketed per
  // object (object states are independent; within one object records stay
  // in LSN order), so the useful maximum is the number of objects with a
  // non-empty tail.
  int replay_threads = 1;
};

// What a checkpoint-aware restart found and did.
struct RestartSummary {
  Lsn checkpoint_anchor = 0;      // 0: no checkpoint, full replay
  size_t checkpoint_objects = 0;  // object states installed from the image
  size_t tail_records = 0;        // records replayed past the anchor
  // Per-object record deliveries dropped because the object's own
  // checkpoint LSN already covered them (the fuzzy overshoot).
  size_t tail_skipped = 0;
  Lsn high_lsn = 0;               // newest LSN on disk; journals resume after
  TxnId max_txn = 0;              // watermark restored (checkpoint + tail)
  SegmentScanReport scan;
};

class TxnManager {
 public:
  explicit TxnManager(TxnManagerOptions options = {});

  CCR_DISALLOW_COPY_AND_ASSIGN(TxnManager);

  // Creates and registers an object with this manager's recorder, detector,
  // kill function, lock timeout, and policy.
  AtomicObject* AddObject(ObjectId id, std::shared_ptr<const Adt> adt,
                          std::shared_ptr<const ConflictRelation> conflict,
                          std::unique_ptr<RecoveryManager> recovery);

  AtomicObject* object(const ObjectId& id) const;

  // All registered objects (registration order). Stable once setup is done;
  // used by crash harnesses to attach journals and audit recovered state.
  std::vector<AtomicObject*> objects() const;

  // Crash restart: replays a journal's commit records in commit order
  // through the objects' recovery managers, rebuilding every object's
  // committed state. Call on a freshly built manager (same objects
  // re-added, no live transactions). Records naming unknown objects or
  // operations not enabled at replay are kInternal — the journal and the
  // system configuration disagree. Journals attached to the recovery
  // managers are detached for the duration (replayed commits are already
  // durable; re-journaling them would double them).
  //
  // Fail-atomic: on any error every object is reset to its ADT's initial
  // state — a half-replayed restart never leaks into service as a valid
  // one. The caller may retry with a repaired journal or discard the
  // manager.
  Status Restart(const Journal& journal);

  // Scans a crash image (the durable journal's post-crash bytes) under the
  // torn-tail truncation rule, replaying each record as it is decoded —
  // restart memory stays bounded by one record, not the journal.
  // `report` (optional) receives the scan outcome. Mid-journal corruption
  // is rejected with kInternal — a durable prefix was damaged, which
  // truncation cannot repair honestly. Fail-atomic like Restart.
  Status RestartFromImage(std::string_view image, RecoveryReport* report);

  // Checkpoint-aware restart from a segmented journal directory: installs
  // the newest intact checkpoint's per-object states, then replays only
  // the records past its anchor, skipping per object what its checkpoint
  // LSN already covers, fanned out over options.replay_threads (per-object
  // buckets). Restart cost is the post-checkpoint tail, not total history.
  // Fail-atomic like Restart. On success, resume journaling at
  // summary.high_lsn + 1 (Journal::set_base_lsn, GroupCommitOptions::
  // first_lsn, SegmentedFileSink::Open's first_lsn).
  StatusOr<RestartSummary> RestartFromDir(const std::string& dir,
                                          RestartOptions options = {});

  // Attaches the group-commit pipeline whose durable watermark gates
  // commit acknowledgment: Commit returns only once the transaction's
  // highest sequenced LSN is durable (a no-op in the pipeline's kSync and
  // kRelaxed modes). The journals attached to this manager's objects must
  // feed the same pipeline. Set before the first transaction; optional.
  void set_commit_pipeline(GroupCommitPipeline* pipeline) {
    pipeline_ = pipeline;
  }
  GroupCommitPipeline* commit_pipeline() const { return pipeline_; }

  // Transaction lifecycle. Commit acknowledges durability: when a
  // group-commit pipeline is attached, it releases every touched object's
  // locks first (early lock release) and only then blocks until the
  // transaction's highest LSN is durable.
  std::shared_ptr<Transaction> Begin();
  StatusOr<Value> Execute(Transaction* txn, const Invocation& inv);
  Status Commit(Transaction* txn);
  Status Abort(Transaction* txn);

  // Runs `body` in a fresh transaction, committing on success and retrying
  // on retryable failures (with randomized backoff) up to
  // options.max_retries times. `body` returning a non-retryable error
  // aborts and returns that error.
  Status RunTransaction(const std::function<Status(Transaction*)>& body);

  // Marks a transaction as a deadlock victim.
  void Kill(TxnId txn);

  // Highest transaction id assigned so far (0 before the first Begin).
  // Checkpoints store it so a restart whose journal tail is empty still
  // refuses to reuse pre-crash ids.
  TxnId max_assigned_txn() const {
    return next_txn_.load(std::memory_order_relaxed) - 1;
  }

  // Ensures ids <= txn are never assigned again. Restart calls this with
  // the checkpoint's max_txn and the tail's highest replayed id; harnesses
  // mirroring a foreign record stream call it directly.
  void AdvanceTxnWatermark(TxnId txn);

  // History recorded so far (empty when record_history is false).
  History SnapshotHistory() const;
  bool recording() const { return options_.record_history; }

  // Recording-layer counters (events recorded, snapshots served) — the
  // driver reports these per run.
  RecorderStats recorder_stats() const { return recorder_.stats(); }

  ManagerStats stats() const;

  // Contention counters summed (and the queue-depth high-water mark maxed,
  // wait-time histograms merged) across all objects — the driver reports
  // these per run.
  ObjectStats AggregateObjectStats() const;

  DeadlockDetector* detector() { return &detector_; }

 private:
  // Shared restart plumbing: refuses live transactions, detaches journals,
  // runs `replay` over an id->object map, reattaches, and on error resets
  // every object to its initial state (the fail-atomicity guarantee).
  Status RestartGuarded(
      const std::function<Status(const std::map<ObjectId, AtomicObject*>&)>&
          replay);

  // Groups `record`'s ops per object preserving per-object order and
  // replays them at `lsn`. kInternal when the record names an object this
  // manager does not have.
  static Status ReplayRecordGrouped(
      const std::map<ObjectId, AtomicObject*>& by_id,
      const Journal::CommitRecord& record, Lsn lsn);

  TxnManagerOptions options_;
  HistoryRecorder recorder_;
  DeadlockDetector detector_;
  GroupCommitPipeline* pipeline_ = nullptr;

  std::atomic<TxnId> next_txn_{1};
  // Retries are counted lock-free: the retry loop is per-worker hot and
  // needs no other manager state.
  std::atomic<uint64_t> retries_{0};

  mutable std::mutex mu_;
  std::map<ObjectId, std::unique_ptr<AtomicObject>> objects_;
  std::map<TxnId, std::shared_ptr<Transaction>> live_;
  ManagerStats stats_;  // retries lives in retries_, not here
};

}  // namespace ccr

#endif  // CCR_TXN_TXN_MANAGER_H_
