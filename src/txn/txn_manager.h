// Copyright 2026 The ccr Authors.
//
// TxnManager: transaction lifecycle, atomic commitment across objects (the
// paper's "commit at one or more objects, never commit-and-abort"), deadlock
// victim handling, and the retry loop client code uses.
//
// Contract: a transaction is driven by one thread. After Execute returns a
// retryable error (kConflict / kDeadlock / kTimedOut), the transaction MUST
// be aborted, not reused; RunTransaction handles this (abort + fresh
// transaction + backoff).

#ifndef CCR_TXN_TXN_MANAGER_H_
#define CCR_TXN_TXN_MANAGER_H_

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "txn/atomic_object.h"
#include "txn/checkpoint.h"
#include "txn/journal_io.h"
#include "txn/object_directory.h"

namespace ccr {

class GroupCommitPipeline;
class Journal;
class ObjectStore;
struct RecoveryReport;

struct TxnManagerOptions {
  bool record_history = true;
  // How the recorder takes events off the objects' hot paths: sharded
  // buffers validated at snapshot time (default), or the eager global-mutex
  // oracle that validates every append (see history_recorder.h).
  RecorderMode recorder_mode = RecorderMode::kSharded;
  DeadlockPolicy policy = DeadlockPolicy::kDetect;
  WakeupMode wakeup = WakeupMode::kEventDriven;
  std::chrono::milliseconds lock_timeout{500};
  int max_retries = 1000;
  // Stripes of the object directory (power of two; 0 picks a default from
  // hardware concurrency). See object_directory.h.
  size_t stripe_count = 0;
  // Cold-object eviction watermarks, active only with an object store
  // attached (set_object_store). When the resident-object estimate exceeds
  // the high watermark, a sweep evicts quiescent objects (CLOCK second
  // chance over the recently-referenced bit) down to the low watermark
  // (which defaults to the high one when 0). 0 high watermark: eviction
  // disabled.
  size_t evict_high_watermark = 0;
  size_t evict_low_watermark = 0;
};

// Aggregate outcome counters.
struct ManagerStats {
  uint64_t begun = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t retries = 0;     // retryable failures that were retried
  uint64_t kills = 0;       // deadlock wounds/victims issued
};

struct RestartOptions {
  // Threads replaying the post-checkpoint tail. The tail is bucketed per
  // object (object states are independent; within one object records stay
  // in LSN order), so the useful maximum is the number of objects with a
  // non-empty tail.
  int replay_threads = 1;
  // Store-backed restarts only: defer dynamically created objects whose
  // image lives in the store and which the journal tail never names.
  // Deferred objects stay out of the directory — their store image IS
  // their state — and fault back in on first GetOrCreate/Execute touch.
  // Restart cost becomes O(tail + touched objects), not O(population).
  bool lazy_store_install = false;
};

// What a checkpoint-aware restart found and did.
struct RestartSummary {
  Lsn checkpoint_anchor = 0;      // 0: no checkpoint, full replay
  size_t checkpoint_objects = 0;  // object states installed from the image
  size_t tail_records = 0;        // records replayed past the anchor
  // Per-object record deliveries dropped because the object's own
  // checkpoint LSN already covered them (the fuzzy overshoot).
  size_t tail_skipped = 0;
  // Lifecycle outcomes: objects re-created through the factory registry
  // (image `dyn` entries + tail `create` records) and objects whose final
  // journaled state is dropped (retired after replay).
  size_t objects_created = 0;
  size_t objects_dropped = 0;
  Lsn high_lsn = 0;               // newest LSN on disk; journals resume after
  TxnId max_txn = 0;              // watermark restored (checkpoint + tail)
  // Store-backed restart: whether the image came from the object store's
  // meta record (vs a checkpoint file), and how many image objects were
  // left deferred in the store (lazy_store_install).
  bool from_store = false;
  size_t store_deferred = 0;
  SegmentScanReport scan;
};

// Everything a factory must supply to instantiate one object: the ADT, its
// conflict relation, and its recovery manager. The manager wires recorder,
// detector, kill function, lock options, and the lifecycle journal itself.
struct ObjectConfig {
  std::shared_ptr<const Adt> adt;
  std::shared_ptr<const ConflictRelation> conflict;
  std::unique_ptr<RecoveryManager> recovery;
};

// Builds the config for a lazily created object. Runs under the owning
// directory stripe's exclusive lock: must not touch the manager or the
// directory.
using ObjectFactory = std::function<ObjectConfig(const ObjectId&)>;

// One operation of a multi-key batch (TxnManager::ExecuteBatch): the target
// object, the factory that may create it on first touch (empty: the object
// must already exist), and the invocation itself. inv.object() must equal
// `object`.
struct BatchOp {
  ObjectId object;
  std::string factory;
  Invocation inv;
};

class TxnManager {
 public:
  explicit TxnManager(TxnManagerOptions options = {});

  CCR_DISALLOW_COPY_AND_ASSIGN(TxnManager);

  // Creates and registers an object with this manager's recorder, detector,
  // kill function, lock timeout, and policy.
  AtomicObject* AddObject(ObjectId id, std::shared_ptr<const Adt> adt,
                          std::shared_ptr<const ConflictRelation> conflict,
                          std::unique_ptr<RecoveryManager> recovery);

  // Registers a factory for lazy object creation. Names must be
  // whitespace-free (they are journaled in create records and checkpoint
  // `dyn` lines). Registering before restart is mandatory for any factory
  // the journal names. Fatal on duplicate name.
  void RegisterFactory(const std::string& name, ObjectFactory factory);

  // Returns the object named `id`, creating it through `factory_name` on
  // first touch (exactly one creator under a race). A created object's
  // recovery manager is attached to the lifecycle journal, and a `create`
  // record is journaled before the object becomes visible — so the create's
  // LSN precedes every commit record of the object. kNotFound when the
  // factory is unknown.
  StatusOr<AtomicObject*> GetOrCreate(const ObjectId& id,
                                      const std::string& factory_name);

  // Drops `id`: refuses (kIllegalState) while any transaction holds locks
  // or waits at the object; otherwise journals a `drop` record and retires
  // the object — lookups stop returning it, raced Execute calls fail with
  // kNotFound, and memory stays valid until restart. kNotFound when absent.
  Status DropObject(const ObjectId& id);

  // The journal create/drop records are appended to (usually the same
  // journal every object's recovery manager feeds). Unset: lifecycle
  // events stay volatile — restart will not re-create dynamic objects.
  // Also the journal attached to lazily created objects' recovery
  // managers. Set before the first GetOrCreate/DropObject.
  void set_lifecycle_journal(Journal* journal) {
    lifecycle_journal_ = journal;
  }
  Journal* lifecycle_journal() const { return lifecycle_journal_; }

  // Attaches the persistent object-store backend. Enables cold-object
  // eviction (EvictObject / the watermark sweep), store-image fault-in on
  // directory misses, store-backed checkpoints (CheckpointerOptions::
  // store must be this same store), and store-preferring restarts. Set
  // before the first transaction; optional. Not owned.
  void set_object_store(ObjectStore* store) { store_ = store; }
  ObjectStore* object_store() const { return store_; }

  // Serializes every store write batch this manager issues (eviction Puts,
  // drop Deletes, the checkpoint batch). First in the lock order: never
  // acquired while a directory stripe or object mutex is held.
  std::mutex& store_mutex() { return store_mu_; }

  // Evicts `id`'s committed state to the object store: encodes it under
  // the object mutex, waits for its last LSN to be durable (the image must
  // never run ahead of the recoverable journal), Puts the image
  // (buffered — the next checkpoint sync hardens it), and swaps the
  // in-memory state for a placeholder. The object's shell stays in the
  // directory; first touch faults the state back in. kIllegalState without
  // a store or while the object is busy (locks held / waiters queued);
  // kNotSupported when its ADT lacks a state codec. An eviction abandoned
  // by a raced commit or drop returns OK without evicting — the written
  // image is stale but sound (image LSNs are monotone).
  Status EvictObject(const ObjectId& id);

  // Watermark sweep (no-op unless a store is attached and
  // evict_high_watermark > 0): when the resident estimate exceeds the high
  // watermark, evicts quiescent, not-recently-referenced objects (CLOCK
  // second chance) down to the low watermark. Called from the Execute
  // paths on a sampled tick; safe to call directly. Returns the number of
  // objects evicted by this call.
  size_t MaybeEvict();

  // Objects whose state currently lives only in the store.
  size_t evicted_objects() const {
    return evicted_count_.load(std::memory_order_relaxed);
  }
  // Estimate of directory objects holding in-memory state (approx_live
  // minus evicted; the eviction watermarks gate on this).
  size_t resident_objects() const {
    const size_t live = directory_.approx_live();
    const size_t evicted = evicted_objects();
    return live >= evicted ? live - evicted : 0;
  }

  AtomicObject* object(const ObjectId& id) const;

  // All live objects, sorted by id. Snapshots one directory stripe at a
  // time — never a global lock; used by crash harnesses to attach journals
  // and audit recovered state, and by the checkpoint walk.
  std::vector<AtomicObject*> objects() const;

  // Directory-layer counters (stripes, live/retired objects, creates,
  // drops, max stripe depth).
  DirectoryStats directory_stats() const { return directory_.stats(); }

  // Crash restart: replays a journal's commit records in commit order
  // through the objects' recovery managers, rebuilding every object's
  // committed state. Call on a freshly built manager (same objects
  // re-added, no live transactions). Records naming unknown objects or
  // operations not enabled at replay are kInternal — the journal and the
  // system configuration disagree. Journals attached to the recovery
  // managers are detached for the duration (replayed commits are already
  // durable; re-journaling them would double them).
  //
  // Fail-atomic: on any error every object is reset to its ADT's initial
  // state — a half-replayed restart never leaks into service as a valid
  // one. The caller may retry with a repaired journal or discard the
  // manager.
  Status Restart(const Journal& journal);

  // Scans a crash image (the durable journal's post-crash bytes) under the
  // torn-tail truncation rule, replaying each record as it is decoded —
  // restart memory stays bounded by one record, not the journal.
  // `report` (optional) receives the scan outcome. Mid-journal corruption
  // is rejected with kInternal — a durable prefix was damaged, which
  // truncation cannot repair honestly. Fail-atomic like Restart.
  Status RestartFromImage(std::string_view image, RecoveryReport* report);

  // Checkpoint-aware restart from a segmented journal directory: installs
  // the newest intact checkpoint's per-object states, then replays only
  // the records past its anchor, skipping per object what its checkpoint
  // LSN already covers, fanned out over options.replay_threads (per-object
  // buckets). Restart cost is the post-checkpoint tail, not total history.
  // Fail-atomic like Restart. On success, resume journaling at
  // summary.high_lsn + 1 (Journal::set_base_lsn, GroupCommitOptions::
  // first_lsn, SegmentedFileSink::Open's first_lsn).
  StatusOr<RestartSummary> RestartFromDir(const std::string& dir,
                                          RestartOptions options = {});

  // Attaches the group-commit pipeline whose durable watermark gates
  // commit acknowledgment: Commit returns only once the transaction's
  // highest sequenced LSN is durable (a no-op in the pipeline's kSync and
  // kRelaxed modes). The journals attached to this manager's objects must
  // feed the same pipeline. Set before the first transaction; optional.
  void set_commit_pipeline(GroupCommitPipeline* pipeline) {
    pipeline_ = pipeline;
  }
  GroupCommitPipeline* commit_pipeline() const { return pipeline_; }

  // Transaction lifecycle. Commit acknowledges durability: when a
  // group-commit pipeline is attached, it releases every touched object's
  // locks first (early lock release) and only then blocks until the
  // transaction's highest LSN is durable.
  std::shared_ptr<Transaction> Begin();
  StatusOr<Value> Execute(Transaction* txn, const Invocation& inv);
  Status Commit(Transaction* txn);
  Status Abort(Transaction* txn);

  // Non-blocking commit for async front ends: runs the whole commit
  // protocol (latch arbitration, per-object or batch-atomic commit,
  // bookkeeping) but does NOT wait for durability. Returns the
  // transaction's highest sequenced LSN; the caller owns the
  // acknowledgment — typically GroupCommitPipeline::OnDurable(lsn, ...) —
  // and must not report the commit to anyone before that point fires.
  // kNoLsn means nothing was journaled (volatile objects): ack immediately.
  // On error (e.g. kDeadlock when a kill won the arbitration) the
  // transaction is already aborted, exactly like Commit.
  StatusOr<Lsn> CommitAsync(Transaction* txn);

  // Executes a whole multi-key batch for `txn` in one call: ops are grouped
  // by object, every object is resolved in one directory pass (shared-mode
  // stripe lookups, GetOrCreate through op.factory for lazy keys — kNotFound
  // when an absent key names no factory), and each object's op-group runs
  // under a single acquisition of its mutex, objects visited in canonical
  // (sorted ObjectId) order. Any two batches acquire objects in the same
  // global order, so batch-vs-batch deadlock is impossible by construction;
  // within one object the caller's op order is preserved, and cross-object
  // reordering is effect-equal because object states are independent.
  // Results land in the ops' original positions. Errors follow Execute's
  // contract (the caller must abort `txn` on retryable failures).
  //
  // Commit of a batch transaction journals ONE multi-object commit record
  // covering every touched object — one LSN, one frame append, one
  // group-commit watermark wait — replayed all-or-nothing by Restart,
  // RestartFromImage, and RestartFromDir.
  StatusOr<std::vector<Value>> ExecuteBatch(Transaction* txn,
                                            std::span<const BatchOp> ops);

  // Runs `body` in a fresh transaction, committing on success and retrying
  // on retryable failures (with randomized backoff) up to
  // options.max_retries times. `body` returning a non-retryable error
  // aborts and returns that error.
  Status RunTransaction(const std::function<Status(Transaction*)>& body);

  // Marks a transaction as a deadlock victim.
  void Kill(TxnId txn);

  // Highest transaction id assigned so far (0 before the first Begin).
  // Checkpoints store it so a restart whose journal tail is empty still
  // refuses to reuse pre-crash ids.
  TxnId max_assigned_txn() const {
    return next_txn_.load(std::memory_order_relaxed) - 1;
  }

  // Ensures ids <= txn are never assigned again. Restart calls this with
  // the checkpoint's max_txn and the tail's highest replayed id; harnesses
  // mirroring a foreign record stream call it directly.
  void AdvanceTxnWatermark(TxnId txn);

  // History recorded so far (empty when record_history is false).
  History SnapshotHistory() const;
  bool recording() const { return options_.record_history; }

  // Recording-layer counters (events recorded, snapshots served) — the
  // driver reports these per run.
  RecorderStats recorder_stats() const { return recorder_.stats(); }

  ManagerStats stats() const;

  // Contention counters summed (and the queue-depth high-water mark maxed,
  // wait-time histograms merged) across all objects — the driver reports
  // these per run.
  ObjectStats AggregateObjectStats() const;

  DeadlockDetector* detector() { return &detector_; }

 private:
  // Mutable object state during a restart replay. Lifecycle records change
  // the id->object mapping mid-replay: creates instantiate objects through
  // the factory registry (or reset an existing id to a fresh incarnation),
  // drops retire them. Created objects stay owned here — outside the
  // directory — until Finalize, so an errored restart discards them
  // without ever publishing (the fail-atomicity guarantee extends to
  // lifecycle). Single-threaded: RestartFromDir applies lifecycle effects
  // during its (serial) scan, before the parallel tail fan-out.
  class ReplayContext {
   public:
    ReplayContext(TxnManager* manager,
                  const std::map<ObjectId, AtomicObject*>& registered);

    // Live view: registered or replay-created objects, minus those
    // currently dropped. nullptr when `id` is unknown or dropped.
    AtomicObject* Find(const ObjectId& id) const;

    // Whether `id` is currently dropped in this replay (distinguishes
    // "dropped" from "never existed" when Find returns nullptr).
    bool Dropped(const ObjectId& id) const { return dropped_.count(id) != 0; }

    // Outcome of applying a journaled `create <id> <factory>`.
    struct CreateResult {
      AtomicObject* object = nullptr;
      // True when the id already existed (pre-registered, or a create
      // following a drop of the same id). A create record is an
      // incarnation boundary; the CALLER owns the reset to initial state —
      // immediately for serial in-order replay, or ordered into the
      // object's replay bucket for the parallel tail.
      bool existed = false;
    };

    // Applies a journaled create: re-instantiates through the registry
    // (kInternal when the factory is unknown — configuration and journal
    // disagree) or un-drops/returns the existing object (see CreateResult).
    StatusOr<CreateResult> ApplyCreate(const ObjectId& id,
                                       const std::string& factory);

    // Applies a journaled `drop <id>`. kInternal when `id` is absent or
    // already dropped.
    Status ApplyDrop(const ObjectId& id);

    // Replays one commit record (per-object grouping, order preserved).
    // kInternal when it names an unknown or dropped object. `ckpt_lsn`
    // (optional) holds per-object installed-image LSNs: ops at or below
    // their object's image LSN are skipped (the fuzzy overshoot, counted
    // into `skipped`) — and an op whose object has a map entry is never an
    // unknown-object error, its image vouches for it.
    Status ReplayCommitRecord(const Journal::CommitRecord& record, Lsn lsn,
                              const std::map<ObjectId, Lsn>* ckpt_lsn = nullptr,
                              size_t* skipped = nullptr);

    // Ids whose journaled drop was applied in this replay, and extra ids
    // the caller flagged (orphan drops): after a successful restart the
    // manager re-deletes their store keys — a pre-crash buffered Delete
    // may have been lost, and once the journal's drop record is truncated
    // a surviving key would resurrect the object.
    const std::set<ObjectId>& dropped() const { return dropped_; }
    void NoteStoreDead(const ObjectId& id) { store_dead_.insert(id); }
    const std::set<ObjectId>& store_dead() const { return store_dead_; }

    // Success-path publication: inserts surviving created objects into the
    // manager's directory (attaching the lifecycle journal to their
    // recovery managers), retires objects whose final state is dropped,
    // and reports the counts. Call exactly once, only when replay
    // succeeded.
    void Finalize(size_t* objects_created, size_t* objects_dropped);

   private:
    TxnManager* const manager_;
    std::map<ObjectId, AtomicObject*> by_id_;
    std::map<ObjectId, std::unique_ptr<AtomicObject>> created_;
    std::set<ObjectId> dropped_;
    std::set<ObjectId> store_dead_;
  };

  // Shared restart plumbing: refuses live transactions, detaches journals,
  // runs `replay` with a context over the registered objects, reattaches,
  // and on error resets every object to its initial state (the
  // fail-atomicity guarantee); on success finalizes lifecycle effects into
  // (created, dropped) if the out-params are non-null.
  Status RestartGuarded(const std::function<Status(ReplayContext&)>& replay,
                        size_t* objects_created = nullptr,
                        size_t* objects_dropped = nullptr);

  // Instantiates an object wired to this manager (recorder shard, deadlock
  // detector registration, kill function, lock options, factory name).
  std::unique_ptr<AtomicObject> BuildObject(ObjectId id, ObjectConfig config,
                                            std::string factory_name);

  // Looks up a registered factory; kNotFound names the factory.
  StatusOr<ObjectFactory> FindFactory(const std::string& name) const;

  // Reads `id`'s store image for AtomicObject fault-in: the raw encoded
  // state plus the LSN it reflects. kNotFound when the store has no key.
  StatusOr<std::pair<std::string, Lsn>> ReadStoreImage(const ObjectId& id);

  // Whether `id` is mid-DropObject (its store key is doomed).
  bool Dropping(const ObjectId& id) const;

  // Directory-miss fallback for Execute/ExecuteBatch: materializes a
  // lazily deferred object from its store image (through the image's own
  // factory, journaling no create record). kNotFound when the store has no
  // image or the image names no factory.
  StatusOr<AtomicObject*> FaultInFromStore(const ObjectId& id);

  // Installs a checkpoint image's object entries into a restart (creating
  // dyn entries through the factory registry), filling `ckpt_lsn`. With
  // `deferred` non-null (lazy store restart), dyn entries for objects the
  // directory does not know are not materialized — they are parked in
  // `deferred` (still entered into `ckpt_lsn`) for on-demand install.
  Status InstallImageObjects(
      ReplayContext& ctx, const CheckpointImage& image,
      std::map<ObjectId, Lsn>* ckpt_lsn,
      std::map<ObjectId, const CheckpointImage::ObjectEntry*>* deferred,
      size_t* installed);

  // Commits a batch-atomic transaction under one multi-object commit
  // record; returns the highest LSN the transaction must wait on. Falls
  // back to per-object records when the touched objects' recovery managers
  // feed different journals.
  Lsn CommitBatchAtomic(Transaction* txn);

  TxnManagerOptions options_;
  HistoryRecorder recorder_;
  DeadlockDetector detector_;
  GroupCommitPipeline* pipeline_ = nullptr;
  Journal* lifecycle_journal_ = nullptr;
  ObjectStore* store_ = nullptr;

  // Serializes all store write batches (lock-order head; see
  // store_mutex()).
  std::mutex store_mu_;

  // Objects currently evicted (AtomicObject maintains it through the
  // attached counter hook).
  std::atomic<size_t> evicted_count_{0};

  // Single-sweeper latch and sampling tick for MaybeEvict.
  std::atomic_flag evict_sweep_ = ATOMIC_FLAG_INIT;
  std::atomic<uint64_t> evict_tick_{0};

  // Ids mid-DropObject: between directory retirement and the store key
  // Delete there is a window where GetOrCreate's store fault-in could read
  // the doomed key and resurrect the dropped state. The fault-in path
  // treats ids in this set as having no store image.
  mutable std::mutex dropping_mu_;
  std::set<ObjectId> dropping_;

  std::atomic<TxnId> next_txn_{1};

  // Outcome counters are lock-free: Begin/Commit/Abort touch no shared
  // mutex for them, so the commit fast path never serializes on a global
  // lock.
  std::atomic<uint64_t> begun_{0};
  std::atomic<uint64_t> committed_{0};
  std::atomic<uint64_t> aborted_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> kills_{0};

  mutable std::shared_mutex factories_mu_;
  std::unordered_map<std::string, ObjectFactory> factories_;

  // The object directory replaces the old global mutex + std::map: lookups
  // take one stripe's shared lock; creates/drops one stripe's exclusive
  // lock.
  ObjectDirectory directory_;

  // Live-transaction table, striped by txn id so Begin/Commit/Abort of
  // different transactions do not serialize on one mutex. Kill and the
  // restart live-check take single stripes.
  static constexpr size_t kLiveStripes = 64;  // power of two
  struct LiveStripe {
    std::mutex mu;
    std::unordered_map<TxnId, std::shared_ptr<Transaction>> txns;
  };
  LiveStripe& live_stripe(TxnId txn) const {
    return live_[static_cast<size_t>(txn) & (kLiveStripes - 1)];
  }
  mutable std::array<LiveStripe, kLiveStripes> live_;
};

}  // namespace ccr

#endif  // CCR_TXN_TXN_MANAGER_H_
