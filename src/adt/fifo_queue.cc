// Copyright 2026 The ccr Authors.

#include "adt/fifo_queue.h"

#include "adt/state_codec.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace ccr {

size_t QueueState::Hash() const {
  size_t h = items.size();
  for (int64_t e : items) {
    h = h * 1000003 + std::hash<int64_t>()(e);
  }
  return h;
}

std::string QueueState::ToString() const {
  std::vector<std::string> parts;
  for (int64_t e : items) {
    parts.push_back(StrFormat("%lld", static_cast<long long>(e)));
  }
  std::string out = "[";
  out += StrJoin(parts, ",");
  out += "]";
  return out;
}

std::vector<std::pair<Value, QueueState>> FifoQueueSpec::TypedOutcomes(
    const QueueState& state, const Invocation& inv) const {
  std::vector<std::pair<Value, QueueState>> out;
  switch (inv.code()) {
    case FifoQueue::kEnq: {
      QueueState next = state;
      next.items.push_back(inv.arg(0).AsInt());
      out.emplace_back(Value("ok"), std::move(next));
      break;
    }
    case FifoQueue::kDeq: {
      if (!state.items.empty()) {
        QueueState next;
        next.items.assign(state.items.begin() + 1, state.items.end());
        out.emplace_back(Value(state.items.front()), std::move(next));
      }
      break;  // empty queue: deq is disabled (partial)
    }
    case FifoQueue::kLen:
      out.emplace_back(Value(static_cast<int64_t>(state.items.size())),
                       state);
      break;
    default:
      break;
  }
  return out;
}

FifoQueue::FifoQueue(std::string object_name)
    : object_name_(std::move(object_name)) {}

Invocation FifoQueue::EnqInv(int64_t item) const {
  return Invocation(object_name_, kEnq, "enq", {Value(item)});
}

Invocation FifoQueue::DeqInv() const {
  return Invocation(object_name_, kDeq, "deq", {});
}

Invocation FifoQueue::LenInv() const {
  return Invocation(object_name_, kLen, "len", {});
}

Operation FifoQueue::Enq(int64_t item) const {
  return Operation(EnqInv(item), Value("ok"));
}

Operation FifoQueue::Deq(int64_t item) const {
  return Operation(DeqInv(), Value(item));
}

Operation FifoQueue::Len(int64_t n) const {
  return Operation(LenInv(), Value(n));
}

std::vector<Operation> FifoQueue::Universe() const {
  std::vector<Operation> ops;
  for (int64_t item : {1, 2}) {
    ops.push_back(Enq(item));
    ops.push_back(Deq(item));
  }
  for (int64_t n : {0, 1, 2}) {
    ops.push_back(Len(n));
  }
  return ops;
}

namespace {

int64_t EnqItem(const Operation& op) { return op.inv().arg(0).AsInt(); }
int64_t DeqItem(const Operation& op) { return op.result().AsInt(); }
int64_t LenVal(const Operation& op) { return op.result().AsInt(); }

}  // namespace

bool FifoQueue::CommuteForward(const Operation& p, const Operation& q) const {
  const Operation& a = p.code() <= q.code() ? p : q;
  const Operation& b = p.code() <= q.code() ? q : p;
  switch (a.code()) {
    case kEnq:
      switch (b.code()) {
        case kEnq:
          return EnqItem(a) == EnqItem(b);  // order observable otherwise
        case kDeq:
          return true;  // deq enabled => nonempty => enq can slide past
        case kLen:
          return false;
      }
      break;
    case kDeq:
      switch (b.code()) {
        case kDeq:
          // Same result: the second deq might see a different item.
          // Different results: no state enables both (vacuous).
          return DeqItem(a) != DeqItem(b);
        case kLen:
          return LenVal(b) == 0;  // vacuous: deq needs a nonempty queue
      }
      break;
    case kLen:
      return true;
  }
  CCR_CHECK_MSG(false, "unknown operation pair (%s, %s)",
                p.ToString().c_str(), q.ToString().c_str());
  return false;
}

bool FifoQueue::RightCommutesBackward(const Operation& p,
                                      const Operation& q) const {
  switch (p.code()) {
    case kEnq:
      switch (q.code()) {
        case kEnq:
          return EnqItem(p) == EnqItem(q);
        case kDeq:
          return true;  // q·p legal => queue nonempty => p·q same state
        case kLen:
          return false;
      }
      break;
    case kDeq:
      switch (q.code()) {
        case kEnq:
          // On an empty queue, enq(j)·[deq,j] is legal but deq-first is not.
          return DeqItem(p) != EnqItem(q);
        case kDeq:
          return DeqItem(p) == DeqItem(q);  // FIFO order fixed otherwise
        case kLen:
          return LenVal(q) == 0;  // vacuous
      }
      break;
    case kLen:
      switch (q.code()) {
        case kEnq:
          return LenVal(p) == 0;  // vacuous: enq leaves length >= 1
        case kDeq:
          return false;
        case kLen:
          return true;
      }
      break;
  }
  CCR_CHECK_MSG(false, "unknown operation pair (%s, %s)",
                p.ToString().c_str(), q.ToString().c_str());
  return false;
}

bool FifoQueue::IsUpdate(const Operation& op) const {
  return op.code() == kEnq || op.code() == kDeq;
}

std::string FifoQueue::EncodeState(const SpecState& state) const {
  return EncodeInt64List(TypedSpecAutomaton<QueueState>::Unwrap(state).items);
}

StatusOr<std::unique_ptr<SpecState>> FifoQueue::DecodeState(
    std::string_view encoded) const {
  StatusOr<std::vector<int64_t>> items = DecodeInt64List(encoded);
  if (!items.ok()) return items.status();
  std::unique_ptr<SpecState> out = std::make_unique<TypedState<QueueState>>(
      QueueState{*std::move(items)});
  return out;
}

std::shared_ptr<FifoQueue> MakeFifoQueue(std::string object_name) {
  return std::make_shared<FifoQueue>(std::move(object_name));
}

}  // namespace ccr
