// Copyright 2026 The ccr Authors.

#include "adt/semiqueue.h"

#include "adt/state_codec.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace ccr {

size_t BagState::Hash() const {
  size_t h = counts.size();
  for (const auto& [e, c] : counts) {
    h = h * 1000003 + std::hash<int64_t>()(e) * 31 +
        static_cast<size_t>(c);
  }
  return h;
}

std::string BagState::ToString() const {
  std::vector<std::string> parts;
  for (const auto& [e, c] : counts) {
    parts.push_back(StrFormat("%lldx%lld", static_cast<long long>(e),
                              static_cast<long long>(c)));
  }
  std::string out = "⟅";
  out += StrJoin(parts, ",");
  out += "⟆";
  return out;
}

int64_t BagState::Total() const {
  int64_t total = 0;
  for (const auto& [e, c] : counts) total += c;
  return total;
}

std::vector<std::pair<Value, BagState>> SemiqueueSpec::TypedOutcomes(
    const BagState& state, const Invocation& inv) const {
  std::vector<std::pair<Value, BagState>> out;
  switch (inv.code()) {
    case Semiqueue::kEnq: {
      BagState next = state;
      next.counts[inv.arg(0).AsInt()] += 1;
      out.emplace_back(Value("ok"), std::move(next));
      break;
    }
    case Semiqueue::kDeq: {
      // One outcome per distinct element: the nondeterministic choice.
      for (const auto& [e, c] : state.counts) {
        BagState next = state;
        if (c == 1) {
          next.counts.erase(e);
        } else {
          next.counts[e] = c - 1;
        }
        out.emplace_back(Value(e), std::move(next));
      }
      break;
    }
    case Semiqueue::kCount:
      out.emplace_back(Value(state.Total()), state);
      break;
    default:
      break;
  }
  return out;
}

Semiqueue::Semiqueue(std::string object_name)
    : object_name_(std::move(object_name)) {}

Invocation Semiqueue::EnqInv(int64_t item) const {
  return Invocation(object_name_, kEnq, "enq", {Value(item)});
}

Invocation Semiqueue::DeqInv() const {
  return Invocation(object_name_, kDeq, "deq", {});
}

Invocation Semiqueue::CountInv() const {
  return Invocation(object_name_, kCount, "count", {});
}

Operation Semiqueue::Enq(int64_t item) const {
  return Operation(EnqInv(item), Value("ok"));
}

Operation Semiqueue::Deq(int64_t item) const {
  return Operation(DeqInv(), Value(item));
}

Operation Semiqueue::Count(int64_t n) const {
  return Operation(CountInv(), Value(n));
}

std::vector<Operation> Semiqueue::Universe() const {
  std::vector<Operation> ops;
  for (int64_t item : {1, 2}) {
    ops.push_back(Enq(item));
    ops.push_back(Deq(item));
  }
  for (int64_t n : {0, 1, 2}) {
    ops.push_back(Count(n));
  }
  return ops;
}

namespace {

int64_t EnqItem(const Operation& op) { return op.inv().arg(0).AsInt(); }
int64_t DeqItem(const Operation& op) { return op.result().AsInt(); }
int64_t CountVal(const Operation& op) { return op.result().AsInt(); }

}  // namespace

bool Semiqueue::CommuteForward(const Operation& p, const Operation& q) const {
  const Operation& a = p.code() <= q.code() ? p : q;
  const Operation& b = p.code() <= q.code() ? q : p;
  switch (a.code()) {
    case kEnq:
      switch (b.code()) {
        case kEnq:
          return true;  // bag insertion is order-free
        case kDeq:
          return true;  // deq enabled beforehand stays enabled after enq
        case kCount:
          return false;
      }
      break;
    case kDeq:
      switch (b.code()) {
        case kDeq:
          // Same item: a single occurrence cannot be dequeued twice.
          return DeqItem(a) != DeqItem(b);
        case kCount:
          return CountVal(b) == 0;  // vacuous: deq needs a nonempty bag
      }
      break;
    case kCount:
      return true;
  }
  CCR_CHECK_MSG(false, "unknown operation pair (%s, %s)",
                p.ToString().c_str(), q.ToString().c_str());
  return false;
}

bool Semiqueue::RightCommutesBackward(const Operation& p,
                                      const Operation& q) const {
  switch (p.code()) {
    case kEnq:
      switch (q.code()) {
        case kEnq:
          return true;
        case kDeq:
          return true;
        case kCount:
          return false;
      }
      break;
    case kDeq:
      switch (q.code()) {
        case kEnq:
          // enq(i)·[deq,i] on an empty bag has no deq-first counterpart.
          return DeqItem(p) != EnqItem(q);
        case kDeq:
          return true;  // both items present either way; same bag results
        case kCount:
          return CountVal(q) == 0;  // vacuous
      }
      break;
    case kCount:
      switch (q.code()) {
        case kEnq:
          return CountVal(p) == 0;  // vacuous: enq leaves count >= 1
        case kDeq:
          return false;
        case kCount:
          return true;
      }
      break;
  }
  CCR_CHECK_MSG(false, "unknown operation pair (%s, %s)",
                p.ToString().c_str(), q.ToString().c_str());
  return false;
}

bool Semiqueue::IsUpdate(const Operation& op) const {
  return op.code() == kEnq || op.code() == kDeq;
}

std::string Semiqueue::EncodeState(const SpecState& state) const {
  const BagState& s = TypedSpecAutomaton<BagState>::Unwrap(state);
  std::string out;
  for (const auto& [elem, count] : s.counts) {
    if (!out.empty()) out += ' ';
    out += StrFormat("%lld %lld", static_cast<long long>(elem),
                     static_cast<long long>(count));
  }
  return out;
}

StatusOr<std::unique_ptr<SpecState>> Semiqueue::DecodeState(
    std::string_view encoded) const {
  const std::vector<std::string_view> tokens = SplitTokens(encoded);
  if (tokens.size() % 2 != 0) {
    return Status::InvalidArgument("bag state needs elem/count pairs: " +
                                   std::string(encoded));
  }
  BagState s;
  for (size_t i = 0; i < tokens.size(); i += 2) {
    StatusOr<int64_t> elem = ParseInt64Token(tokens[i]);
    if (!elem.ok()) return elem.status();
    StatusOr<int64_t> count = ParseInt64Token(tokens[i + 1]);
    if (!count.ok()) return count.status();
    if (*count <= 0) {
      return Status::InvalidArgument("bag counts must be positive: " +
                                     std::string(encoded));
    }
    s.counts[*elem] = *count;
  }
  std::unique_ptr<SpecState> out =
      std::make_unique<TypedState<BagState>>(std::move(s));
  return out;
}

std::shared_ptr<Semiqueue> MakeSemiqueue(std::string object_name) {
  return std::make_shared<Semiqueue>(std::move(object_name));
}

}  // namespace ccr
