// Copyright 2026 The ccr Authors.
//
// A FIFO queue with a *partial* dequeue (disabled when empty). FIFO order
// makes this the least concurrent ADT in the library: enqueues of distinct
// items do not even commute with each other (the order is observable), yet
// an enqueue still commutes forward with a dequeue on a nonempty queue —
// the classic example from Weihl's earlier work.
//
//   [enq(i), ok] : s' = s · i
//   [deq, i]     : pre s = i · t, s' = t
//   [len, n]     : pre |s| == n

#ifndef CCR_ADT_FIFO_QUEUE_H_
#define CCR_ADT_FIFO_QUEUE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/adt.h"
#include "core/spec.h"

namespace ccr {

struct QueueState {
  std::vector<int64_t> items;

  bool operator==(const QueueState& other) const {
    return items == other.items;
  }
  size_t Hash() const;
  std::string ToString() const;
};

class FifoQueueSpec final : public TypedSpecAutomaton<QueueState> {
 public:
  std::string name() const override { return "FifoQueue"; }
  QueueState Initial() const override { return QueueState{}; }
  std::vector<std::pair<Value, QueueState>> TypedOutcomes(
      const QueueState& state, const Invocation& inv) const override;
};

class FifoQueue final : public Adt {
 public:
  static constexpr int kEnq = 0;
  static constexpr int kDeq = 1;
  static constexpr int kLen = 2;

  explicit FifoQueue(std::string object_name = "Q");

  const std::string& object_name() const { return object_name_; }

  Invocation EnqInv(int64_t item) const;
  Invocation DeqInv() const;
  Invocation LenInv() const;

  Operation Enq(int64_t item) const;   // [enq(i), ok]
  Operation Deq(int64_t item) const;   // [deq, i]
  Operation Len(int64_t n) const;      // [len, n]

  std::string name() const override { return "FifoQueue"; }
  const SpecAutomaton& spec() const override { return spec_; }
  std::vector<Operation> Universe() const override;
  bool CommuteForward(const Operation& p, const Operation& q) const override;
  bool RightCommutesBackward(const Operation& p,
                             const Operation& q) const override;
  bool IsUpdate(const Operation& op) const override;

  bool supports_state_codec() const override { return true; }
  std::string EncodeState(const SpecState& state) const override;
  StatusOr<std::unique_ptr<SpecState>> DecodeState(
      std::string_view encoded) const override;

 private:
  std::string object_name_;
  FifoQueueSpec spec_;
};

std::shared_ptr<FifoQueue> MakeFifoQueue(std::string object_name = "Q");

}  // namespace ccr

#endif  // CCR_ADT_FIFO_QUEUE_H_
