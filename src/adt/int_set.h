// Copyright 2026 The ccr Authors.
//
// A set of integers — the standard example of a type whose algebra admits
// far more concurrency than read/write locking: inserts of distinct elements
// commute, idempotent re-inserts commute, a membership test commutes with an
// insert of the same element when the answer is "true", and so on.
//
//   [insert(i), ok] : s' = s ∪ {i}
//   [remove(i), ok] : s' = s \ {i}
//   [member(i), b]  : pre (i ∈ s) == b
//   [size, n]       : pre |s| == n
//
// Inverse operations are NOT definable from the operation alone (undoing
// insert(i) needs to know whether i was present before), so this ADT forces
// UIP recovery onto its replay path — a deliberate contrast with the
// arithmetic ADTs.

#ifndef CCR_ADT_INT_SET_H_
#define CCR_ADT_INT_SET_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/adt.h"
#include "core/spec.h"

namespace ccr {

// The abstract state: a finite set of integers.
struct SetState {
  std::set<int64_t> elems;

  bool operator==(const SetState& other) const {
    return elems == other.elems;
  }
  size_t Hash() const;
  std::string ToString() const;
};

class IntSetSpec final : public TypedSpecAutomaton<SetState> {
 public:
  std::string name() const override { return "IntSet"; }
  SetState Initial() const override { return SetState{}; }
  std::vector<std::pair<Value, SetState>> TypedOutcomes(
      const SetState& state, const Invocation& inv) const override;
};

class IntSet final : public Adt {
 public:
  static constexpr int kInsert = 0;
  static constexpr int kRemove = 1;
  static constexpr int kMember = 2;
  static constexpr int kSize = 3;

  explicit IntSet(std::string object_name = "SET");

  const std::string& object_name() const { return object_name_; }

  Invocation InsertInv(int64_t elem) const;
  Invocation RemoveInv(int64_t elem) const;
  Invocation MemberInv(int64_t elem) const;
  Invocation SizeInv() const;

  Operation Insert(int64_t elem) const;            // [insert(i), ok]
  Operation Remove(int64_t elem) const;            // [remove(i), ok]
  Operation Member(int64_t elem, bool in) const;   // [member(i), b]
  Operation Size(int64_t n) const;                 // [size, n]

  std::string name() const override { return "IntSet"; }
  const SpecAutomaton& spec() const override { return spec_; }
  std::vector<Operation> Universe() const override;
  bool CommuteForward(const Operation& p, const Operation& q) const override;
  bool RightCommutesBackward(const Operation& p,
                             const Operation& q) const override;
  bool IsUpdate(const Operation& op) const override;
  // No inverse support: see header comment.

  bool supports_state_codec() const override { return true; }
  std::string EncodeState(const SpecState& state) const override;
  StatusOr<std::unique_ptr<SpecState>> DecodeState(
      std::string_view encoded) const override;

 private:
  std::string object_name_;
  IntSetSpec spec_;
};

std::shared_ptr<IntSet> MakeIntSet(std::string object_name = "SET");

}  // namespace ccr

#endif  // CCR_ADT_INT_SET_H_
