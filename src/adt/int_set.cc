// Copyright 2026 The ccr Authors.

#include "adt/int_set.h"

#include "adt/state_codec.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace ccr {

size_t SetState::Hash() const {
  size_t h = elems.size();
  for (int64_t e : elems) {
    h = h * 1000003 + std::hash<int64_t>()(e);
  }
  return h;
}

std::string SetState::ToString() const {
  std::vector<std::string> parts;
  for (int64_t e : elems) {
    parts.push_back(StrFormat("%lld", static_cast<long long>(e)));
  }
  std::string out = "{";
  out += StrJoin(parts, ",");
  out += "}";
  return out;
}

std::vector<std::pair<Value, SetState>> IntSetSpec::TypedOutcomes(
    const SetState& state, const Invocation& inv) const {
  std::vector<std::pair<Value, SetState>> out;
  switch (inv.code()) {
    case IntSet::kInsert: {
      SetState next = state;
      next.elems.insert(inv.arg(0).AsInt());
      out.emplace_back(Value("ok"), std::move(next));
      break;
    }
    case IntSet::kRemove: {
      SetState next = state;
      next.elems.erase(inv.arg(0).AsInt());
      out.emplace_back(Value("ok"), std::move(next));
      break;
    }
    case IntSet::kMember:
      out.emplace_back(Value(state.elems.count(inv.arg(0).AsInt()) > 0),
                       state);
      break;
    case IntSet::kSize:
      out.emplace_back(Value(static_cast<int64_t>(state.elems.size())),
                       state);
      break;
    default:
      break;
  }
  return out;
}

IntSet::IntSet(std::string object_name)
    : object_name_(std::move(object_name)) {}

Invocation IntSet::InsertInv(int64_t elem) const {
  return Invocation(object_name_, kInsert, "insert", {Value(elem)});
}

Invocation IntSet::RemoveInv(int64_t elem) const {
  return Invocation(object_name_, kRemove, "remove", {Value(elem)});
}

Invocation IntSet::MemberInv(int64_t elem) const {
  return Invocation(object_name_, kMember, "member", {Value(elem)});
}

Invocation IntSet::SizeInv() const {
  return Invocation(object_name_, kSize, "size", {});
}

Operation IntSet::Insert(int64_t elem) const {
  return Operation(InsertInv(elem), Value("ok"));
}

Operation IntSet::Remove(int64_t elem) const {
  return Operation(RemoveInv(elem), Value("ok"));
}

Operation IntSet::Member(int64_t elem, bool in) const {
  return Operation(MemberInv(elem), Value(in));
}

Operation IntSet::Size(int64_t n) const {
  return Operation(SizeInv(), Value(n));
}

std::vector<Operation> IntSet::Universe() const {
  // Three elements, not two: commuting with [size,n] depends on states that
  // contain n elements *other than* the operation's own element, so the
  // element range must exceed the size range by one for the analyzer's
  // bounded α-exploration to cover every distinguishing state.
  std::vector<Operation> ops;
  for (int64_t e : {1, 2, 3}) {
    ops.push_back(Insert(e));
    ops.push_back(Remove(e));
    ops.push_back(Member(e, true));
    ops.push_back(Member(e, false));
  }
  for (int64_t n : {0, 1, 2}) {
    ops.push_back(Size(n));
  }
  return ops;
}

namespace {

int64_t Elem(const Operation& op) { return op.inv().arg(0).AsInt(); }

bool MemberTrue(const Operation& op) { return op.result().AsBool(); }

}  // namespace

bool IntSet::CommuteForward(const Operation& p, const Operation& q) const {
  const Operation& a = p.code() <= q.code() ? p : q;
  const Operation& b = p.code() <= q.code() ? q : p;
  switch (a.code()) {
    case kInsert:
      switch (b.code()) {
        case kInsert:
          return true;  // distinct elems commute; same elem is idempotent
        case kRemove:
          return Elem(a) != Elem(b);
        case kMember:
          // insert(i) forces member(i) -> true afterwards.
          return Elem(a) != Elem(b) || MemberTrue(b);
        case kSize:
          return false;  // a state with a absent and |s| = n always exists
      }
      break;
    case kRemove:
      switch (b.code()) {
        case kRemove:
          return true;  // idempotent / disjoint
        case kMember:
          return Elem(a) != Elem(b) || !MemberTrue(b);
        case kSize:
          // Vacuous iff no state has a's element present with |s| = n,
          // i.e. n == 0.
          return b.result().AsInt() == 0;
      }
      break;
    case kMember:
      return true;  // observers commute with observers
    case kSize:
      return true;
  }
  CCR_CHECK_MSG(false, "unknown operation pair (%s, %s)",
                p.ToString().c_str(), q.ToString().c_str());
  return false;
}

bool IntSet::RightCommutesBackward(const Operation& p,
                                   const Operation& q) const {
  switch (p.code()) {
    case kInsert:
      switch (q.code()) {
        case kInsert:
          return true;
        case kRemove:
          return Elem(p) != Elem(q);  // remove·insert ends present; swap no
        case kMember:
          // member(i,false)·insert(i): the insert-first order outlaws the
          // "false" observation.
          return Elem(p) != Elem(q) || MemberTrue(q);
        case kSize:
          return false;  // size(n)·insert at a state lacking the element
      }
      break;
    case kRemove:
      switch (q.code()) {
        case kInsert:
          return Elem(p) != Elem(q);
        case kRemove:
          return true;
        case kMember:
          return Elem(p) != Elem(q) || !MemberTrue(q);
        case kSize:
          // size(n)·remove(i) with the element present needs n >= 1;
          // vacuous iff n == 0.
          return q.result().AsInt() == 0;
      }
      break;
    case kMember:
      switch (q.code()) {
        case kInsert:
          // insert(i)·member(i,true) holds in every state, but
          // member(i,true) first needs i already present.
          return Elem(p) != Elem(q) || !MemberTrue(p);
        case kRemove:
          return Elem(p) != Elem(q) || MemberTrue(p);
        case kMember:
        case kSize:
          return true;
      }
      break;
    case kSize:
      switch (q.code()) {
        case kInsert:
          // insert·size(n) from |s| = n-1 with elem absent; size(n) first
          // fails there. Vacuous iff n == 0 (insert never leaves 0).
          return p.result().AsInt() == 0;
        case kRemove:
          return false;  // remove·size(n) from |s| = n+1 with elem present
        case kMember:
        case kSize:
          return true;
      }
      break;
  }
  CCR_CHECK_MSG(false, "unknown operation pair (%s, %s)",
                p.ToString().c_str(), q.ToString().c_str());
  return false;
}

bool IntSet::IsUpdate(const Operation& op) const {
  return op.code() == kInsert || op.code() == kRemove;
}

std::string IntSet::EncodeState(const SpecState& state) const {
  const SetState& s = TypedSpecAutomaton<SetState>::Unwrap(state);
  return EncodeInt64List(
      std::vector<int64_t>(s.elems.begin(), s.elems.end()));
}

StatusOr<std::unique_ptr<SpecState>> IntSet::DecodeState(
    std::string_view encoded) const {
  StatusOr<std::vector<int64_t>> elems = DecodeInt64List(encoded);
  if (!elems.ok()) return elems.status();
  SetState s;
  s.elems.insert(elems->begin(), elems->end());
  std::unique_ptr<SpecState> out =
      std::make_unique<TypedState<SetState>>(std::move(s));
  return out;
}

std::shared_ptr<IntSet> MakeIntSet(std::string object_name) {
  return std::make_shared<IntSet>(std::move(object_name));
}

}  // namespace ccr
