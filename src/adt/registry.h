// Copyright 2026 The ccr Authors.
//
// A registry of every ADT in the library, so tests and benches can sweep
// "for every ADT" (analyzer-vs-closed-form cross-checks, conflict-density
// tables, incomparability counts).

#ifndef CCR_ADT_REGISTRY_H_
#define CCR_ADT_REGISTRY_H_

#include <memory>
#include <vector>

#include "core/adt.h"
#include "core/commutativity.h"

namespace ccr {

// Fresh instances of every library ADT, with default object names.
std::vector<std::shared_ptr<Adt>> AllAdts();

// Analysis options appropriate for `adt`: extends the probe universe with
// the ADT's argument-indexed observers over the reachable range so bounded
// equieffectiveness probing is exact.
AnalysisOptions AnalysisOptionsFor(const Adt& adt);

// Convenience: an analyzer over the ADT's declared universe.
CommutativityAnalyzer MakeAnalyzer(const Adt& adt);

}  // namespace ccr

#endif  // CCR_ADT_REGISTRY_H_
