// Copyright 2026 The ccr Authors.

#include "adt/bounded_counter.h"

#include "adt/state_codec.h"

#include "common/macros.h"

namespace ccr {

namespace {

bool IsOk(const Operation& op) {
  return op.result().is_string() && op.result().AsString() == "ok";
}

}  // namespace

std::vector<std::pair<Value, Int64State>> BoundedCounterSpec::TypedOutcomes(
    const Int64State& state, const Invocation& inv) const {
  std::vector<std::pair<Value, Int64State>> out;
  switch (inv.code()) {
    case BoundedCounter::kAdd: {
      const int64_t amount = inv.arg(0).AsInt();
      if (amount > 0) {
        if (state.v + amount <= cap_) {
          out.emplace_back(Value("ok"), Int64State{state.v + amount});
        } else {
          out.emplace_back(Value("no"), state);
        }
      }
      break;
    }
    case BoundedCounter::kTake: {
      const int64_t amount = inv.arg(0).AsInt();
      if (amount > 0) {
        if (state.v >= amount) {
          out.emplace_back(Value("ok"), Int64State{state.v - amount});
        } else {
          out.emplace_back(Value("no"), state);
        }
      }
      break;
    }
    case BoundedCounter::kLevel:
      out.emplace_back(Value(state.v), state);
      break;
    default:
      break;
  }
  return out;
}

BoundedCounter::BoundedCounter(std::string object_name, int64_t cap)
    : object_name_(std::move(object_name)), spec_(cap) {
  CCR_CHECK(cap > 0);
}

Invocation BoundedCounter::AddInv(int64_t amount) const {
  return Invocation(object_name_, kAdd, "add", {Value(amount)});
}

Invocation BoundedCounter::TakeInv(int64_t amount) const {
  return Invocation(object_name_, kTake, "take", {Value(amount)});
}

Invocation BoundedCounter::LevelInv() const {
  return Invocation(object_name_, kLevel, "level", {});
}

Operation BoundedCounter::AddOk(int64_t amount) const {
  return Operation(AddInv(amount), Value("ok"));
}

Operation BoundedCounter::AddNo(int64_t amount) const {
  return Operation(AddInv(amount), Value("no"));
}

Operation BoundedCounter::TakeOk(int64_t amount) const {
  return Operation(TakeInv(amount), Value("ok"));
}

Operation BoundedCounter::TakeNo(int64_t amount) const {
  return Operation(TakeInv(amount), Value("no"));
}

Operation BoundedCounter::Level(int64_t n) const {
  return Operation(LevelInv(), Value(n));
}

std::vector<Operation> BoundedCounter::Universe() const {
  std::vector<Operation> ops;
  for (int64_t amount : {1, 2}) {
    ops.push_back(AddOk(amount));
    ops.push_back(AddNo(amount));
    ops.push_back(TakeOk(amount));
    ops.push_back(TakeNo(amount));
  }
  for (int64_t n = 0; n <= cap(); ++n) {
    ops.push_back(Level(n));
  }
  return ops;
}

std::vector<Operation> BoundedCounter::LevelProbes() const {
  std::vector<Operation> ops;
  for (int64_t n = 0; n <= cap(); ++n) ops.push_back(Level(n));
  return ops;
}

bool BoundedCounter::StepAt(int64_t s, const Operation& op,
                            int64_t* next) const {
  for (auto& [result, state] :
       spec_.TypedOutcomes(Int64State{s}, op.inv())) {
    if (result == op.result()) {
      *next = state.v;
      return true;
    }
  }
  return false;
}

// Both closed forms below are exact decision procedures: the state space is
// {0, ..., cap} and every state is reachable (adds of 1 from 0) and
// observably distinct (via [level, n]), so
//   FC(p, q)  iff for every s: p, q defined at s implies p·q and q·p
//             defined with equal end states;
//   RBC(p, q) iff for every s: q·p defined at s implies p·q defined at s
//             with an equal end state.
bool BoundedCounter::CommuteForward(const Operation& p,
                                    const Operation& q) const {
  for (int64_t s = 0; s <= cap(); ++s) {
    int64_t after_p, after_q;
    if (!StepAt(s, p, &after_p) || !StepAt(s, q, &after_q)) continue;
    int64_t pq, qp;
    if (!StepAt(after_p, q, &pq) || !StepAt(after_q, p, &qp)) return false;
    if (pq != qp) return false;
  }
  return true;
}

bool BoundedCounter::RightCommutesBackward(const Operation& p,
                                           const Operation& q) const {
  for (int64_t s = 0; s <= cap(); ++s) {
    int64_t after_q;
    if (!StepAt(s, q, &after_q)) continue;
    int64_t qp;
    if (!StepAt(after_q, p, &qp)) continue;  // q·p undefined here: vacuous
    int64_t after_p, pq;
    if (!StepAt(s, p, &after_p) || !StepAt(after_p, q, &pq)) return false;
    if (pq != qp) return false;
  }
  return true;
}

bool BoundedCounter::IsUpdate(const Operation& op) const {
  return op.code() == kAdd || op.code() == kTake;
}

std::optional<std::unique_ptr<SpecState>> BoundedCounter::InverseApply(
    const SpecState& state, const Operation& op) const {
  const int64_t level = TypedSpecAutomaton<Int64State>::Unwrap(state).v;
  int64_t undone = level;
  switch (op.code()) {
    case kAdd:
      if (IsOk(op)) undone = level - op.inv().arg(0).AsInt();
      break;
    case kTake:
      if (IsOk(op)) undone = level + op.inv().arg(0).AsInt();
      break;
    case kLevel:
      break;
    default:
      return std::nullopt;
  }
  if (undone < 0 || undone > cap()) return std::nullopt;
  return std::make_unique<TypedState<Int64State>>(Int64State{undone});
}

std::string BoundedCounter::EncodeState(const SpecState& state) const {
  return EncodeInt64State(TypedSpecAutomaton<Int64State>::Unwrap(state).v);
}

StatusOr<std::unique_ptr<SpecState>> BoundedCounter::DecodeState(
    std::string_view encoded) const {
  StatusOr<int64_t> v = DecodeInt64State(encoded);
  if (!v.ok()) return v.status();
  std::unique_ptr<SpecState> out =
      std::make_unique<TypedState<Int64State>>(Int64State{*v});
  return out;
}

std::shared_ptr<BoundedCounter> MakeBoundedCounter(std::string object_name,
                                                   int64_t cap) {
  return std::make_shared<BoundedCounter>(std::move(object_name), cap);
}

}  // namespace ccr
