// Copyright 2026 The ccr Authors.
//
// A key-value store mapping string keys to integers — the "object-oriented
// database" flavor of the framework. Operations on distinct keys always
// commute; per-key behavior mirrors a last-writer register with a tombstone.
//
//   [put(k,v), ok]  : s' = s[k := v]
//   [del(k), ok]    : s' = s without k
//   [get(k), v]     : pre s[k] == v      (v an integer)
//   [get(k), none]  : pre k not bound

#ifndef CCR_ADT_KV_STORE_H_
#define CCR_ADT_KV_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/adt.h"
#include "core/spec.h"

namespace ccr {

struct KvState {
  std::map<std::string, int64_t> entries;

  bool operator==(const KvState& other) const {
    return entries == other.entries;
  }
  size_t Hash() const;
  std::string ToString() const;
};

class KvStoreSpec final : public TypedSpecAutomaton<KvState> {
 public:
  std::string name() const override { return "KvStore"; }
  KvState Initial() const override { return KvState{}; }
  std::vector<std::pair<Value, KvState>> TypedOutcomes(
      const KvState& state, const Invocation& inv) const override;
};

class KvStore final : public Adt {
 public:
  static constexpr int kPut = 0;
  static constexpr int kDel = 1;
  static constexpr int kGet = 2;

  explicit KvStore(std::string object_name = "KV");

  const std::string& object_name() const { return object_name_; }

  Invocation PutInv(const std::string& key, int64_t value) const;
  Invocation DelInv(const std::string& key) const;
  Invocation GetInv(const std::string& key) const;

  Operation Put(const std::string& key, int64_t value) const;
  Operation Del(const std::string& key) const;
  Operation Get(const std::string& key, int64_t value) const;
  Operation GetNone(const std::string& key) const;

  std::string name() const override { return "KvStore"; }
  const SpecAutomaton& spec() const override { return spec_; }
  std::vector<Operation> Universe() const override;
  bool CommuteForward(const Operation& p, const Operation& q) const override;
  bool RightCommutesBackward(const Operation& p,
                             const Operation& q) const override;
  bool IsUpdate(const Operation& op) const override;

  bool supports_state_codec() const override { return true; }
  std::string EncodeState(const SpecState& state) const override;
  StatusOr<std::unique_ptr<SpecState>> DecodeState(
      std::string_view encoded) const override;

 private:
  std::string object_name_;
  KvStoreSpec spec_;
};

std::shared_ptr<KvStore> MakeKvStore(std::string object_name = "KV");

}  // namespace ccr

#endif  // CCR_ADT_KV_STORE_H_
