// Copyright 2026 The ccr Authors.
//
// An uninterpreted read/write register — the degenerate case the paper's
// introduction contrasts against ("initial work in the area left the data
// uninterpreted, or viewed operations as simple reads and writes"). With no
// algebraic structure to exploit, both NFC and NRBC collapse to (almost)
// classical read/write conflicts; the only extra concurrency left is
// same-value absorption (two writes of the same value commute, and a read
// returning v commutes forward with a write of v).
//
//   [write(v), ok] : s' = v
//   [read, v]      : pre s == v

#ifndef CCR_ADT_REGISTER_H_
#define CCR_ADT_REGISTER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/adt.h"
#include "core/spec.h"

namespace ccr {

class RegisterSpec final : public TypedSpecAutomaton<Int64State> {
 public:
  std::string name() const override { return "Register"; }
  Int64State Initial() const override { return Int64State{0}; }
  std::vector<std::pair<Value, Int64State>> TypedOutcomes(
      const Int64State& state, const Invocation& inv) const override;
};

class Register final : public Adt {
 public:
  static constexpr int kWrite = 0;
  static constexpr int kRead = 1;

  explicit Register(std::string object_name = "REG");

  const std::string& object_name() const { return object_name_; }

  Invocation WriteInv(int64_t value) const;
  Invocation ReadInv() const;

  Operation Write(int64_t value) const;  // [write(v), ok]
  Operation Read(int64_t value) const;   // [read, v]

  std::string name() const override { return "Register"; }
  const SpecAutomaton& spec() const override { return spec_; }
  std::vector<Operation> Universe() const override;
  bool CommuteForward(const Operation& p, const Operation& q) const override;
  bool RightCommutesBackward(const Operation& p,
                             const Operation& q) const override;
  bool IsUpdate(const Operation& op) const override;
  // Writes are not invertible from the operation alone (the overwritten
  // value is lost), so UIP recovery uses replay.

  bool supports_state_codec() const override { return true; }
  std::string EncodeState(const SpecState& state) const override;
  StatusOr<std::unique_ptr<SpecState>> DecodeState(
      std::string_view encoded) const override;

 private:
  std::string object_name_;
  RegisterSpec spec_;
};

std::shared_ptr<Register> MakeRegister(std::string object_name = "REG");

}  // namespace ccr

#endif  // CCR_ADT_REGISTER_H_
