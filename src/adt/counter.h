// Copyright 2026 The ccr Authors.
//
// A non-negative counter with a *partial* decrement: dec(i) is disabled
// (blocks) when the count is below i, rather than returning "no" as the bank
// account's withdraw does. This is the classic hot-spot aggregate
// (inventory, quota, seat count) and exercises the paper's claim that the
// analysis covers partial operations.
//
//   [inc(i), ok] (i > 0):            s' = s + i
//   [dec(i), ok] (i > 0): pre s >= i, s' = s - i
//   [read, n]           : pre s == n

#ifndef CCR_ADT_COUNTER_H_
#define CCR_ADT_COUNTER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/adt.h"
#include "core/spec.h"

namespace ccr {

class CounterSpec final : public TypedSpecAutomaton<Int64State> {
 public:
  std::string name() const override { return "Counter"; }
  Int64State Initial() const override { return Int64State{0}; }
  std::vector<std::pair<Value, Int64State>> TypedOutcomes(
      const Int64State& state, const Invocation& inv) const override;
};

class Counter final : public Adt {
 public:
  static constexpr int kInc = 0;
  static constexpr int kDec = 1;
  static constexpr int kRead = 2;

  explicit Counter(std::string object_name = "CTR");

  const std::string& object_name() const { return object_name_; }

  Invocation IncInv(int64_t amount) const;
  Invocation DecInv(int64_t amount) const;
  Invocation ReadInv() const;

  Operation Inc(int64_t amount) const;   // [inc(i), ok]
  Operation Dec(int64_t amount) const;   // [dec(i), ok]
  Operation Read(int64_t value) const;   // [read, n]

  std::string name() const override { return "Counter"; }
  const SpecAutomaton& spec() const override { return spec_; }
  std::vector<Operation> Universe() const override;
  bool CommuteForward(const Operation& p, const Operation& q) const override;
  bool RightCommutesBackward(const Operation& p,
                             const Operation& q) const override;
  bool IsUpdate(const Operation& op) const override;
  std::optional<std::unique_ptr<SpecState>> InverseApply(
      const SpecState& state, const Operation& op) const override;
  bool supports_inverse() const override { return true; }

  bool supports_state_codec() const override { return true; }
  std::string EncodeState(const SpecState& state) const override;
  StatusOr<std::unique_ptr<SpecState>> DecodeState(
      std::string_view encoded) const override;

  std::vector<Operation> ReadProbes(int64_t max_value) const;

 private:
  std::string object_name_;
  CounterSpec spec_;
};

std::shared_ptr<Counter> MakeCounter(std::string object_name = "CTR");

}  // namespace ccr

#endif  // CCR_ADT_COUNTER_H_
