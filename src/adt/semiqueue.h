// Copyright 2026 The ccr Authors.
//
// A semiqueue (Weihl's classic weak queue): enqueue adds an item to a bag,
// dequeue removes and returns *some* previously-enqueued item —
// nondeterministically. This is the library's genuinely nondeterministic
// specification: a single invocation [deq] has one outcome per distinct
// element in the bag, so the spec automaton is exercised through the subset
// construction. Giving up FIFO order buys back almost all concurrency:
// dequeues of distinct items commute, unlike the FIFO queue's.
//
//   [enq(i), ok] : bag' = bag ⊎ {i}
//   [deq, i]     : pre i ∈ bag, bag' = bag ∖ {i}   (one occurrence)
//   [count, n]   : pre |bag| == n

#ifndef CCR_ADT_SEMIQUEUE_H_
#define CCR_ADT_SEMIQUEUE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/adt.h"
#include "core/spec.h"

namespace ccr {

// Multiset of integers, as element -> positive count.
struct BagState {
  std::map<int64_t, int64_t> counts;

  bool operator==(const BagState& other) const {
    return counts == other.counts;
  }
  size_t Hash() const;
  std::string ToString() const;
  int64_t Total() const;
};

class SemiqueueSpec final : public TypedSpecAutomaton<BagState> {
 public:
  std::string name() const override { return "Semiqueue"; }
  BagState Initial() const override { return BagState{}; }
  std::vector<std::pair<Value, BagState>> TypedOutcomes(
      const BagState& state, const Invocation& inv) const override;
  bool deterministic() const override { return false; }
};

class Semiqueue final : public Adt {
 public:
  static constexpr int kEnq = 0;
  static constexpr int kDeq = 1;
  static constexpr int kCount = 2;

  explicit Semiqueue(std::string object_name = "SQ");

  const std::string& object_name() const { return object_name_; }

  Invocation EnqInv(int64_t item) const;
  Invocation DeqInv() const;
  Invocation CountInv() const;

  Operation Enq(int64_t item) const;    // [enq(i), ok]
  Operation Deq(int64_t item) const;    // [deq, i]
  Operation Count(int64_t n) const;     // [count, n]

  std::string name() const override { return "Semiqueue"; }
  const SpecAutomaton& spec() const override { return spec_; }
  std::vector<Operation> Universe() const override;
  bool CommuteForward(const Operation& p, const Operation& q) const override;
  bool RightCommutesBackward(const Operation& p,
                             const Operation& q) const override;
  bool IsUpdate(const Operation& op) const override;

  bool supports_state_codec() const override { return true; }
  std::string EncodeState(const SpecState& state) const override;
  StatusOr<std::unique_ptr<SpecState>> DecodeState(
      std::string_view encoded) const override;

 private:
  std::string object_name_;
  SemiqueueSpec spec_;
};

std::shared_ptr<Semiqueue> MakeSemiqueue(std::string object_name = "SQ");

}  // namespace ccr

#endif  // CCR_ADT_SEMIQUEUE_H_
