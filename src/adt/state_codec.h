// Copyright 2026 The ccr Authors.
//
// Shared helpers for the ADT state codecs (Adt::EncodeState /
// Adt::DecodeState): whitespace-separated integer lists and the single
// "i <v>" integer form the Int64State ADTs share. Encodings are
// newline-free by construction — a checkpoint image stores one object's
// state per line (txn/checkpoint.h).

#ifndef CCR_ADT_STATE_CODEC_H_
#define CCR_ADT_STATE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ccr {

// "i <v>" — the Int64State encoding.
std::string EncodeInt64State(int64_t v);
StatusOr<int64_t> DecodeInt64State(std::string_view encoded);

// Space-separated decimal integers; the empty list encodes to "".
std::string EncodeInt64List(const std::vector<int64_t>& values);
StatusOr<std::vector<int64_t>> DecodeInt64List(std::string_view encoded);

// Splits on runs of spaces (no other whitespace appears in encodings).
std::vector<std::string_view> SplitTokens(std::string_view encoded);

StatusOr<int64_t> ParseInt64Token(std::string_view token);

// Percent-escapes a raw byte string into a single space-free, newline-free,
// control-byte-free token (used for KV keys). Empty strings encode to the
// sentinel "%"; NUL and other control bytes become %hh escapes so tokens
// survive c_str()-based formatting and the one-line-per-state file format.
std::string EscapeToken(std::string_view raw);
StatusOr<std::string> UnescapeToken(std::string_view token);

}  // namespace ccr

#endif  // CCR_ADT_STATE_CODEC_H_
