// Copyright 2026 The ccr Authors.
//
// The paper's running example (Sections 3.2 and 6): a bank account with
// deposit, withdraw, and balance operations. Withdraw is total but has two
// results — "ok" when the balance covers the amount, "no" otherwise — which
// is exactly why conflict relations must be defined on operations
// (invocation + result) rather than invocations.
//
// The serial specification is the paper's automaton M(BA): states are
// non-negative integers, initial state 0, and
//   [deposit(i), ok]   (i > 0): s' = s + i
//   [withdraw(i), ok]  (i > 0): pre s >= i, s' = s - i
//   [withdraw(i), no]  (i > 0): pre s < i
//   [balance, i]              : pre s == i
//
// The closed-form commutativity predicates generalize Figures 6-1 and 6-2 to
// arbitrary concrete amounts. Two cells are argument-dependent:
//   FC([withdraw(i),ok], [balance,j]) holds iff j < i (vacuously: no state
//     enables both), and
//   RBC([balance,i], [deposit(j),ok]) holds iff i < j (vacuously: no state
//     enables deposit(j)·balance(i)).
// Aggregated over all amounts both collapse to the paper's "x" entries.

#ifndef CCR_ADT_BANK_ACCOUNT_H_
#define CCR_ADT_BANK_ACCOUNT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/adt.h"
#include "core/spec.h"

namespace ccr {

class BankAccountSpec final : public TypedSpecAutomaton<Int64State> {
 public:
  explicit BankAccountSpec(std::string object_name)
      : object_name_(std::move(object_name)) {}

  std::string name() const override { return "BankAccount"; }
  Int64State Initial() const override { return Int64State{0}; }
  std::vector<std::pair<Value, Int64State>> TypedOutcomes(
      const Int64State& state, const Invocation& inv) const override;

 private:
  std::string object_name_;
};

class BankAccount final : public Adt {
 public:
  // Operation codes.
  static constexpr int kDeposit = 0;
  static constexpr int kWithdraw = 1;
  static constexpr int kBalance = 2;

  explicit BankAccount(std::string object_name = "BA");

  const std::string& object_name() const { return object_name_; }

  // Invocation factories.
  Invocation DepositInv(int64_t amount) const;
  Invocation WithdrawInv(int64_t amount) const;
  Invocation BalanceInv() const;

  // Operation factories (invocation + result).
  Operation Deposit(int64_t amount) const;      // [deposit(i), ok]
  Operation WithdrawOk(int64_t amount) const;   // [withdraw(i), ok]
  Operation WithdrawNo(int64_t amount) const;   // [withdraw(i), no]
  Operation Balance(int64_t balance) const;     // [balance, i]

  // Adt interface.
  std::string name() const override { return "BankAccount"; }
  const SpecAutomaton& spec() const override { return spec_; }
  std::vector<Operation> Universe() const override;
  bool CommuteForward(const Operation& p, const Operation& q) const override;
  bool RightCommutesBackward(const Operation& p,
                             const Operation& q) const override;
  bool IsUpdate(const Operation& op) const override;
  std::optional<std::unique_ptr<SpecState>> InverseApply(
      const SpecState& state, const Operation& op) const override;
  bool supports_inverse() const override { return true; }

  bool supports_state_codec() const override { return true; }
  std::string EncodeState(const SpecState& state) const override;
  StatusOr<std::unique_ptr<SpecState>> DecodeState(
      std::string_view encoded) const override;

  // Observer operations covering balances [0, max] — the probe universe for
  // exact bounded equieffectiveness checks.
  std::vector<Operation> BalanceProbes(int64_t max_balance) const;

 private:
  std::string object_name_;
  BankAccountSpec spec_;
};

std::shared_ptr<BankAccount> MakeBankAccount(std::string object_name = "BA");

}  // namespace ccr

#endif  // CCR_ADT_BANK_ACCOUNT_H_
