// Copyright 2026 The ccr Authors.

#include "adt/registry.h"

#include "adt/bank_account.h"
#include "adt/bounded_counter.h"
#include "adt/counter.h"
#include "adt/fifo_queue.h"
#include "adt/int_set.h"
#include "adt/kv_store.h"
#include "adt/register.h"
#include "adt/semiqueue.h"

namespace ccr {

std::vector<std::shared_ptr<Adt>> AllAdts() {
  return {
      MakeBankAccount(), MakeCounter(),   MakeIntSet(),
      MakeFifoQueue(),   MakeKvStore(),   MakeSemiqueue(),
      MakeRegister(),    MakeBoundedCounter(),
  };
}

AnalysisOptions AnalysisOptionsFor(const Adt& adt) {
  AnalysisOptions options;
  // With universes of ~9-12 operations and reach depth 10, the reachable
  // abstract states stay small; the caps below are generous.
  options.max_macro_states = 8192;
  options.reach_depth = 8;
  options.probe.depth = 5;

  // Argument-indexed observers over the whole reachable range make bounded
  // looks-like probing exact: any two distinct abstract states differ in
  // some observer's legality.
  const std::string& name = adt.name();
  if (name == "BankAccount") {
    const auto& ba = static_cast<const BankAccount&>(adt);
    // Amounts in the universe are <= 2 and reach depth is 8: balances stay
    // within [0, 16].
    options.probe_universe = ba.BalanceProbes(20);
  } else if (name == "Counter") {
    const auto& ctr = static_cast<const Counter&>(adt);
    options.probe_universe = ctr.ReadProbes(20);
  } else if (name == "IntSet") {
    const auto& set = static_cast<const IntSet&>(adt);
    for (int64_t e : {1, 2, 3}) {
      options.probe_universe.push_back(set.Member(e, true));
      options.probe_universe.push_back(set.Member(e, false));
    }
    for (int64_t n = 0; n <= 4; ++n) {
      options.probe_universe.push_back(set.Size(n));
    }
  } else if (name == "FifoQueue") {
    const auto& q = static_cast<const FifoQueue&>(adt);
    for (int64_t n = 0; n <= 12; ++n) {
      options.probe_universe.push_back(q.Len(n));
    }
  } else if (name == "Semiqueue") {
    const auto& sq = static_cast<const Semiqueue&>(adt);
    for (int64_t n = 0; n <= 12; ++n) {
      options.probe_universe.push_back(sq.Count(n));
    }
  } else if (name == "BoundedCounter") {
    const auto& pool = static_cast<const BoundedCounter&>(adt);
    options.probe_universe = pool.LevelProbes();
  } else if (name == "Register") {
    const auto& reg = static_cast<const Register&>(adt);
    for (int64_t v = 0; v <= 2; ++v) {
      options.probe_universe.push_back(reg.Read(v));
    }
  }
  // KvStore's universe already contains every observer over its key/value
  // ranges.
  return options;
}

CommutativityAnalyzer MakeAnalyzer(const Adt& adt) {
  return CommutativityAnalyzer(&adt.spec(), adt.Universe(),
                               AnalysisOptionsFor(adt));
}

}  // namespace ccr
