// Copyright 2026 The ccr Authors.

#include "adt/counter.h"

#include "adt/state_codec.h"

#include "common/macros.h"

namespace ccr {

std::vector<std::pair<Value, Int64State>> CounterSpec::TypedOutcomes(
    const Int64State& state, const Invocation& inv) const {
  std::vector<std::pair<Value, Int64State>> out;
  switch (inv.code()) {
    case Counter::kInc: {
      const int64_t amount = inv.arg(0).AsInt();
      if (amount > 0) {
        out.emplace_back(Value("ok"), Int64State{state.v + amount});
      }
      break;
    }
    case Counter::kDec: {
      const int64_t amount = inv.arg(0).AsInt();
      if (amount > 0 && state.v >= amount) {
        out.emplace_back(Value("ok"), Int64State{state.v - amount});
      }
      break;  // disabled below the floor: dec is partial
    }
    case Counter::kRead:
      out.emplace_back(Value(state.v), state);
      break;
    default:
      break;
  }
  return out;
}

Counter::Counter(std::string object_name)
    : object_name_(std::move(object_name)) {}

Invocation Counter::IncInv(int64_t amount) const {
  return Invocation(object_name_, kInc, "inc", {Value(amount)});
}

Invocation Counter::DecInv(int64_t amount) const {
  return Invocation(object_name_, kDec, "dec", {Value(amount)});
}

Invocation Counter::ReadInv() const {
  return Invocation(object_name_, kRead, "read", {});
}

Operation Counter::Inc(int64_t amount) const {
  return Operation(IncInv(amount), Value("ok"));
}

Operation Counter::Dec(int64_t amount) const {
  return Operation(DecInv(amount), Value("ok"));
}

Operation Counter::Read(int64_t value) const {
  return Operation(ReadInv(), Value(value));
}

std::vector<Operation> Counter::Universe() const {
  std::vector<Operation> ops;
  for (int64_t amount : {1, 2}) {
    ops.push_back(Inc(amount));
    ops.push_back(Dec(amount));
  }
  for (int64_t value : {0, 1, 2}) {
    ops.push_back(Read(value));
  }
  return ops;
}

std::vector<Operation> Counter::ReadProbes(int64_t max_value) const {
  std::vector<Operation> ops;
  for (int64_t v = 0; v <= max_value; ++v) ops.push_back(Read(v));
  return ops;
}

bool Counter::CommuteForward(const Operation& p, const Operation& q) const {
  const Operation& a = p.code() <= q.code() ? p : q;
  const Operation& b = p.code() <= q.code() ? q : p;
  switch (a.code()) {
    case kInc:
      switch (b.code()) {
        case kInc:
        case kDec:
          return true;  // adds/subtracts compose in either order
        case kRead:
          return false;  // inc changes the value a read reports
      }
      break;
    case kDec:
      switch (b.code()) {
        case kDec:
          // dec(i), dec(j) both enabled at s = max(i, j) but the pair needs
          // s >= i + j: not forward-commuting.
          return false;
        case kRead:
          // [dec(i),ok] and [read,n] both enabled iff n >= i: then the read
          // after the dec would report n - i != n. Vacuous iff n < i.
          return b.result().AsInt() < a.inv().arg(0).AsInt();
      }
      break;
    case kRead:
      return true;
  }
  CCR_CHECK_MSG(false, "unknown operation pair (%s, %s)",
                p.ToString().c_str(), q.ToString().c_str());
  return false;
}

bool Counter::RightCommutesBackward(const Operation& p,
                                    const Operation& q) const {
  switch (p.code()) {
    case kInc:
      switch (q.code()) {
        case kInc:
        case kDec:
          return true;  // inc is total and additive: moves left freely
        case kRead:
          return false;  // read n then inc != inc then read n
      }
      break;
    case kDec:
      switch (q.code()) {
        case kInc:
          return false;  // dec enabled only thanks to the earlier inc
        case kDec:
          return true;   // q·p needs s >= i + j, so p·q is enabled too
        case kRead:
          // [read,n]·[dec(i),ok] needs n >= i; then dec·read reports n - i:
          // fails. Vacuous iff n < i.
          return q.result().AsInt() < p.inv().arg(0).AsInt();
      }
      break;
    case kRead:
      switch (q.code()) {
        case kInc:
          // inc(j)·[read,n] needs s = n - j: then read-first reports n - j:
          // fails unless no state enables the pair, i.e. n < j.
          return p.result().AsInt() < q.inv().arg(0).AsInt();
        case kDec:
          return false;  // dec(j)·[read,n] at s = n + j; read-first fails
        case kRead:
          return true;
      }
      break;
  }
  CCR_CHECK_MSG(false, "unknown operation pair (%s, %s)",
                p.ToString().c_str(), q.ToString().c_str());
  return false;
}

bool Counter::IsUpdate(const Operation& op) const {
  return op.code() == kInc || op.code() == kDec;
}

std::optional<std::unique_ptr<SpecState>> Counter::InverseApply(
    const SpecState& state, const Operation& op) const {
  const int64_t value = TypedSpecAutomaton<Int64State>::Unwrap(state).v;
  int64_t undone = value;
  switch (op.code()) {
    case kInc:
      undone = value - op.inv().arg(0).AsInt();
      break;
    case kDec:
      undone = value + op.inv().arg(0).AsInt();
      break;
    case kRead:
      break;
    default:
      return std::nullopt;
  }
  if (undone < 0) return std::nullopt;
  return std::make_unique<TypedState<Int64State>>(Int64State{undone});
}

std::string Counter::EncodeState(const SpecState& state) const {
  return EncodeInt64State(TypedSpecAutomaton<Int64State>::Unwrap(state).v);
}

StatusOr<std::unique_ptr<SpecState>> Counter::DecodeState(
    std::string_view encoded) const {
  StatusOr<int64_t> v = DecodeInt64State(encoded);
  if (!v.ok()) return v.status();
  std::unique_ptr<SpecState> out =
      std::make_unique<TypedState<Int64State>>(Int64State{*v});
  return out;
}

std::shared_ptr<Counter> MakeCounter(std::string object_name) {
  return std::make_shared<Counter>(std::move(object_name));
}

}  // namespace ccr
