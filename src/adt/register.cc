// Copyright 2026 The ccr Authors.

#include "adt/register.h"

#include "adt/state_codec.h"

#include "common/macros.h"

namespace ccr {

std::vector<std::pair<Value, Int64State>> RegisterSpec::TypedOutcomes(
    const Int64State& state, const Invocation& inv) const {
  std::vector<std::pair<Value, Int64State>> out;
  switch (inv.code()) {
    case Register::kWrite:
      out.emplace_back(Value("ok"), Int64State{inv.arg(0).AsInt()});
      break;
    case Register::kRead:
      out.emplace_back(Value(state.v), state);
      break;
    default:
      break;
  }
  return out;
}

Register::Register(std::string object_name)
    : object_name_(std::move(object_name)) {}

Invocation Register::WriteInv(int64_t value) const {
  return Invocation(object_name_, kWrite, "write", {Value(value)});
}

Invocation Register::ReadInv() const {
  return Invocation(object_name_, kRead, "read", {});
}

Operation Register::Write(int64_t value) const {
  return Operation(WriteInv(value), Value("ok"));
}

Operation Register::Read(int64_t value) const {
  return Operation(ReadInv(), Value(value));
}

std::vector<Operation> Register::Universe() const {
  std::vector<Operation> ops;
  for (int64_t v : {1, 2}) {
    ops.push_back(Write(v));
  }
  for (int64_t v : {0, 1, 2}) {
    ops.push_back(Read(v));
  }
  return ops;
}

bool Register::CommuteForward(const Operation& p, const Operation& q) const {
  const Operation& a = p.code() <= q.code() ? p : q;
  const Operation& b = p.code() <= q.code() ? q : p;
  switch (a.code()) {
    case kWrite:
      switch (b.code()) {
        case kWrite:
          // Last writer wins: distinct values leave distinct states.
          return a.inv().arg(0).AsInt() == b.inv().arg(0).AsInt();
        case kRead:
          // After the write, a read must return the written value.
          return b.result().AsInt() == a.inv().arg(0).AsInt();
      }
      break;
    case kRead:
      return true;  // reads commute with reads
  }
  CCR_CHECK_MSG(false, "unknown operation pair (%s, %s)",
                p.ToString().c_str(), q.ToString().c_str());
  return false;
}

bool Register::RightCommutesBackward(const Operation& p,
                                     const Operation& q) const {
  switch (p.code()) {
    case kWrite:
      switch (q.code()) {
        case kWrite:
          return p.inv().arg(0).AsInt() == q.inv().arg(0).AsInt();
        case kRead:
          // read(r)·write(v): write-first outlaws the observation unless
          // r == v, in which case write-first is more permissive.
          return p.inv().arg(0).AsInt() == q.result().AsInt();
      }
      break;
    case kRead:
      switch (q.code()) {
        case kWrite:
          // write(v)·read(v) is legal in every state; read-first needs the
          // register to already hold v. Mismatched values are vacuous.
          return p.result().AsInt() != q.inv().arg(0).AsInt();
        case kRead:
          return true;
      }
      break;
  }
  CCR_CHECK_MSG(false, "unknown operation pair (%s, %s)",
                p.ToString().c_str(), q.ToString().c_str());
  return false;
}

bool Register::IsUpdate(const Operation& op) const {
  return op.code() == kWrite;
}

std::string Register::EncodeState(const SpecState& state) const {
  return EncodeInt64State(TypedSpecAutomaton<Int64State>::Unwrap(state).v);
}

StatusOr<std::unique_ptr<SpecState>> Register::DecodeState(
    std::string_view encoded) const {
  StatusOr<int64_t> v = DecodeInt64State(encoded);
  if (!v.ok()) return v.status();
  std::unique_ptr<SpecState> out =
      std::make_unique<TypedState<Int64State>>(Int64State{*v});
  return out;
}

std::shared_ptr<Register> MakeRegister(std::string object_name) {
  return std::make_shared<Register>(std::move(object_name));
}

}  // namespace ccr
