// Copyright 2026 The ccr Authors.

#include "adt/bank_account.h"

#include "adt/state_codec.h"

#include "common/macros.h"

namespace ccr {

namespace {

// Result constants shared by the operation factories and the spec.
const char kOk[] = "ok";
const char kNo[] = "no";

bool IsOk(const Operation& op) {
  return op.result().is_string() && op.result().AsString() == kOk;
}

}  // namespace

std::vector<std::pair<Value, Int64State>> BankAccountSpec::TypedOutcomes(
    const Int64State& state, const Invocation& inv) const {
  std::vector<std::pair<Value, Int64State>> out;
  switch (inv.code()) {
    case BankAccount::kDeposit: {
      const int64_t amount = inv.arg(0).AsInt();
      if (amount > 0) {
        out.emplace_back(Value(kOk), Int64State{state.v + amount});
      }
      break;
    }
    case BankAccount::kWithdraw: {
      const int64_t amount = inv.arg(0).AsInt();
      if (amount > 0) {
        if (state.v >= amount) {
          out.emplace_back(Value(kOk), Int64State{state.v - amount});
        } else {
          out.emplace_back(Value(kNo), state);
        }
      }
      break;
    }
    case BankAccount::kBalance:
      out.emplace_back(Value(state.v), state);
      break;
    default:
      break;  // unknown invocation: disabled
  }
  return out;
}

BankAccount::BankAccount(std::string object_name)
    : object_name_(std::move(object_name)), spec_(object_name_) {}

Invocation BankAccount::DepositInv(int64_t amount) const {
  return Invocation(object_name_, kDeposit, "deposit",
                    {Value(amount)});
}

Invocation BankAccount::WithdrawInv(int64_t amount) const {
  return Invocation(object_name_, kWithdraw, "withdraw",
                    {Value(amount)});
}

Invocation BankAccount::BalanceInv() const {
  return Invocation(object_name_, kBalance, "balance", {});
}

Operation BankAccount::Deposit(int64_t amount) const {
  return Operation(DepositInv(amount), Value(kOk));
}

Operation BankAccount::WithdrawOk(int64_t amount) const {
  return Operation(WithdrawInv(amount), Value(kOk));
}

Operation BankAccount::WithdrawNo(int64_t amount) const {
  return Operation(WithdrawInv(amount), Value(kNo));
}

Operation BankAccount::Balance(int64_t balance) const {
  return Operation(BalanceInv(), Value(balance));
}

std::vector<Operation> BankAccount::Universe() const {
  std::vector<Operation> ops;
  for (int64_t amount : {1, 2}) {
    ops.push_back(Deposit(amount));
    ops.push_back(WithdrawOk(amount));
    ops.push_back(WithdrawNo(amount));
  }
  for (int64_t balance : {0, 1, 2}) {
    ops.push_back(Balance(balance));
  }
  return ops;
}

std::vector<Operation> BankAccount::BalanceProbes(int64_t max_balance) const {
  std::vector<Operation> ops;
  for (int64_t b = 0; b <= max_balance; ++b) ops.push_back(Balance(b));
  return ops;
}

bool BankAccount::CommuteForward(const Operation& p,
                                 const Operation& q) const {
  // Normalize to (row, col) with row code <= col code; FC is symmetric.
  const Operation& a = p.code() <= q.code() ? p : q;
  const Operation& b = p.code() <= q.code() ? q : p;
  switch (a.code()) {
    case kDeposit:
      switch (b.code()) {
        case kDeposit:
          return true;
        case kWithdraw:
          // deposit commutes forward with withdraw/ok, not withdraw/no.
          return IsOk(b);
        case kBalance:
          return false;
      }
      break;
    case kWithdraw:
      switch (b.code()) {
        case kWithdraw:
          // ok/ok: insufficient funds for both in sequence may exist -> no.
          // ok/no and no/no commute.
          return !(IsOk(a) && IsOk(b));
        case kBalance:
          if (!IsOk(a)) return true;  // withdraw/no commutes with balance
          // [withdraw(i),ok] vs [balance,j]: vacuous (hence commuting) iff
          // no state enables both, i.e. j < i.
          return b.result().AsInt() < a.inv().arg(0).AsInt();
      }
      break;
    case kBalance:
      return true;  // balance/balance
  }
  CCR_CHECK_MSG(false, "unknown operation pair (%s, %s)",
                p.ToString().c_str(), q.ToString().c_str());
  return false;
}

bool BankAccount::RightCommutesBackward(const Operation& p,
                                        const Operation& q) const {
  // Does p right-commute-backward with q (p after q -> p before q)?
  switch (p.code()) {
    case kDeposit:
      switch (q.code()) {
        case kDeposit:
          return true;
        case kWithdraw:
          return IsOk(q);  // commutes with withdraw/ok, not withdraw/no
        case kBalance:
          return false;
      }
      break;
    case kWithdraw:
      if (IsOk(p)) {
        switch (q.code()) {
          case kDeposit:
            return false;  // the paper's Section 6.3 example
          case kWithdraw:
            return true;  // ok after ok or after no can move left
          case kBalance:
            // [withdraw(i),ok] rcb [balance,j]: vacuous iff j < i.
            return q.result().AsInt() < p.inv().arg(0).AsInt();
        }
      } else {
        switch (q.code()) {
          case kDeposit:
            return true;
          case kWithdraw:
            return !IsOk(q);  // no rcb ok fails; no rcb no holds
          case kBalance:
            return true;
        }
      }
      break;
    case kBalance:
      switch (q.code()) {
        case kDeposit:
          // [balance,i] rcb [deposit(j),ok]: vacuous iff i < j.
          return p.result().AsInt() < q.inv().arg(0).AsInt();
        case kWithdraw:
          return !IsOk(q);  // fails against withdraw/ok, holds against no
        case kBalance:
          return true;
      }
      break;
  }
  CCR_CHECK_MSG(false, "unknown operation pair (%s, %s)",
                p.ToString().c_str(), q.ToString().c_str());
  return false;
}

bool BankAccount::IsUpdate(const Operation& op) const {
  // Classical locking classifies by invocation: any withdraw attempt is a
  // writer even when it returns "no".
  return op.code() == kDeposit || op.code() == kWithdraw;
}

std::optional<std::unique_ptr<SpecState>> BankAccount::InverseApply(
    const SpecState& state, const Operation& op) const {
  const int64_t balance = TypedSpecAutomaton<Int64State>::Unwrap(state).v;
  int64_t undone = balance;
  switch (op.code()) {
    case kDeposit:
      undone = balance - op.inv().arg(0).AsInt();
      break;
    case kWithdraw:
      if (IsOk(op)) undone = balance + op.inv().arg(0).AsInt();
      break;
    case kBalance:
      break;
    default:
      return std::nullopt;
  }
  if (undone < 0) return std::nullopt;  // cannot undo out of domain
  return std::make_unique<TypedState<Int64State>>(Int64State{undone});
}

std::string BankAccount::EncodeState(const SpecState& state) const {
  return EncodeInt64State(TypedSpecAutomaton<Int64State>::Unwrap(state).v);
}

StatusOr<std::unique_ptr<SpecState>> BankAccount::DecodeState(
    std::string_view encoded) const {
  StatusOr<int64_t> v = DecodeInt64State(encoded);
  if (!v.ok()) return v.status();
  std::unique_ptr<SpecState> out =
      std::make_unique<TypedState<Int64State>>(Int64State{*v});
  return out;
}

std::shared_ptr<BankAccount> MakeBankAccount(std::string object_name) {
  return std::make_shared<BankAccount>(std::move(object_name));
}

}  // namespace ccr
