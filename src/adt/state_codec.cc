// Copyright 2026 The ccr Authors.

#include "adt/state_codec.h"

#include <cerrno>
#include <cstdlib>

#include "common/string_util.h"

namespace ccr {

std::string EncodeInt64State(int64_t v) {
  return StrFormat("i %lld", static_cast<long long>(v));
}

StatusOr<int64_t> DecodeInt64State(std::string_view encoded) {
  const std::vector<std::string_view> tokens = SplitTokens(encoded);
  if (tokens.size() != 2 || tokens[0] != "i") {
    return Status::InvalidArgument("int64 state must be 'i <v>': " +
                                   std::string(encoded));
  }
  return ParseInt64Token(tokens[1]);
}

std::string EncodeInt64List(const std::vector<int64_t>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ' ';
    out += StrFormat("%lld", static_cast<long long>(values[i]));
  }
  return out;
}

StatusOr<std::vector<int64_t>> DecodeInt64List(std::string_view encoded) {
  std::vector<int64_t> out;
  for (const std::string_view token : SplitTokens(encoded)) {
    StatusOr<int64_t> v = ParseInt64Token(token);
    if (!v.ok()) return v.status();
    out.push_back(*v);
  }
  return out;
}

std::vector<std::string_view> SplitTokens(std::string_view encoded) {
  std::vector<std::string_view> out;
  size_t pos = 0;
  while (pos < encoded.size()) {
    while (pos < encoded.size() && encoded[pos] == ' ') ++pos;
    size_t end = pos;
    while (end < encoded.size() && encoded[end] != ' ') ++end;
    if (end > pos) out.push_back(encoded.substr(pos, end - pos));
    pos = end;
  }
  return out;
}

namespace {

bool NeedsEscape(char c) {
  // Escape the escape char itself, every control byte (NUL through 0x1f —
  // a raw NUL would truncate any later c_str()-based formatting, and \n
  // would break the one-state-per-line checkpoint format), space (the
  // token separator), and DEL. High bytes (UTF-8) pass through raw.
  const unsigned char u = static_cast<unsigned char>(c);
  return c == '%' || u <= 0x20 || u == 0x7f;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string EscapeToken(std::string_view raw) {
  if (raw.empty()) return "%";  // lone '%': the empty-string sentinel
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (NeedsEscape(c)) {
      out += StrFormat("%%%02x", static_cast<unsigned char>(c));
    } else {
      out += c;
    }
  }
  return out;
}

StatusOr<std::string> UnescapeToken(std::string_view token) {
  if (token == "%") return std::string();
  std::string out;
  out.reserve(token.size());
  for (size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      out += token[i];
      continue;
    }
    if (i + 2 >= token.size()) {
      return Status::InvalidArgument("truncated escape in token: " +
                                     std::string(token));
    }
    const int hi = HexDigit(token[i + 1]);
    const int lo = HexDigit(token[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("bad escape in token: " +
                                     std::string(token));
    }
    out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return out;
}

StatusOr<int64_t> ParseInt64Token(std::string_view token) {
  const std::string buf(token);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (buf.empty() || end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::InvalidArgument("malformed integer token: " + buf);
  }
  return static_cast<int64_t>(v);
}

}  // namespace ccr
