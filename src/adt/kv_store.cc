// Copyright 2026 The ccr Authors.

#include "adt/kv_store.h"

#include "adt/state_codec.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace ccr {

namespace {

const char kNone[] = "none";

const std::string& KeyOf(const Operation& op) {
  return op.inv().arg(0).AsString();
}

bool GetIsNone(const Operation& op) {
  return op.result().is_string() && op.result().AsString() == kNone;
}

}  // namespace

size_t KvState::Hash() const {
  size_t h = entries.size();
  for (const auto& [k, v] : entries) {
    h = h * 1000003 + std::hash<std::string>()(k) * 31 +
        std::hash<int64_t>()(v);
  }
  return h;
}

std::string KvState::ToString() const {
  std::vector<std::string> parts;
  for (const auto& [k, v] : entries) {
    parts.push_back(StrFormat("%s=%lld", k.c_str(),
                              static_cast<long long>(v)));
  }
  std::string out = "{";
  out += StrJoin(parts, ",");
  out += "}";
  return out;
}

std::vector<std::pair<Value, KvState>> KvStoreSpec::TypedOutcomes(
    const KvState& state, const Invocation& inv) const {
  std::vector<std::pair<Value, KvState>> out;
  switch (inv.code()) {
    case KvStore::kPut: {
      KvState next = state;
      next.entries[inv.arg(0).AsString()] = inv.arg(1).AsInt();
      out.emplace_back(Value("ok"), std::move(next));
      break;
    }
    case KvStore::kDel: {
      KvState next = state;
      next.entries.erase(inv.arg(0).AsString());
      out.emplace_back(Value("ok"), std::move(next));
      break;
    }
    case KvStore::kGet: {
      auto it = state.entries.find(inv.arg(0).AsString());
      if (it == state.entries.end()) {
        out.emplace_back(Value(kNone), state);
      } else {
        out.emplace_back(Value(it->second), state);
      }
      break;
    }
    default:
      break;
  }
  return out;
}

KvStore::KvStore(std::string object_name)
    : object_name_(std::move(object_name)) {}

Invocation KvStore::PutInv(const std::string& key, int64_t value) const {
  return Invocation(object_name_, kPut, "put", {Value(key), Value(value)});
}

Invocation KvStore::DelInv(const std::string& key) const {
  return Invocation(object_name_, kDel, "del", {Value(key)});
}

Invocation KvStore::GetInv(const std::string& key) const {
  return Invocation(object_name_, kGet, "get", {Value(key)});
}

Operation KvStore::Put(const std::string& key, int64_t value) const {
  return Operation(PutInv(key, value), Value("ok"));
}

Operation KvStore::Del(const std::string& key) const {
  return Operation(DelInv(key), Value("ok"));
}

Operation KvStore::Get(const std::string& key, int64_t value) const {
  return Operation(GetInv(key), Value(value));
}

Operation KvStore::GetNone(const std::string& key) const {
  return Operation(GetInv(key), Value(kNone));
}

std::vector<Operation> KvStore::Universe() const {
  std::vector<Operation> ops;
  for (const std::string key : {"x", "y"}) {
    for (int64_t v : {1, 2}) {
      ops.push_back(Put(key, v));
      ops.push_back(Get(key, v));
    }
    ops.push_back(Del(key));
    ops.push_back(GetNone(key));
  }
  return ops;
}

bool KvStore::CommuteForward(const Operation& p, const Operation& q) const {
  if (KeyOf(p) != KeyOf(q)) return true;  // distinct keys always commute
  const Operation& a = p.code() <= q.code() ? p : q;
  const Operation& b = p.code() <= q.code() ? q : p;
  switch (a.code()) {
    case kPut:
      switch (b.code()) {
        case kPut:
          // Last writer wins: different values leave different states.
          return a.inv().arg(1).AsInt() == b.inv().arg(1).AsInt();
        case kDel:
          return false;  // put·del unbinds, del·put binds
        case kGet:
          // After the put, a get must see the put's value.
          return !GetIsNone(b) &&
                 b.result().AsInt() == a.inv().arg(1).AsInt();
      }
      break;
    case kDel:
      switch (b.code()) {
        case kDel:
          return true;  // idempotent
        case kGet:
          return GetIsNone(b);  // del forces "none" afterwards
      }
      break;
    case kGet:
      return true;  // observers commute
  }
  CCR_CHECK_MSG(false, "unknown operation pair (%s, %s)",
                p.ToString().c_str(), q.ToString().c_str());
  return false;
}

bool KvStore::RightCommutesBackward(const Operation& p,
                                    const Operation& q) const {
  if (KeyOf(p) != KeyOf(q)) return true;
  switch (p.code()) {
    case kPut:
      switch (q.code()) {
        case kPut:
          return p.inv().arg(1).AsInt() == q.inv().arg(1).AsInt();
        case kDel:
          return false;  // del·put binds; put·del unbinds
        case kGet:
          // get(r)·put(v): put-first outlaws observing r unless r == v, in
          // which case put-first is *more* permissive (legal in all states).
          return !GetIsNone(q) &&
                 q.result().AsInt() == p.inv().arg(1).AsInt();
      }
      break;
    case kDel:
      switch (q.code()) {
        case kPut:
          return false;
        case kDel:
          return true;
        case kGet:
          // get(none)·del: del-first is legal everywhere and equieffective.
          // get(v)·del: del-first outlaws observing v.
          return GetIsNone(q);
      }
      break;
    case kGet:
      switch (q.code()) {
        case kPut:
          // put(v)·get(r) is legal iff r == v, in every state; get-first
          // needs the binding already — fails on some state. get(r != v)
          // after put(v) is never legal: vacuous.
          return GetIsNone(p) || p.result().AsInt() != q.inv().arg(1).AsInt();
        case kDel:
          // del·get(none) legal everywhere; get(none)-first needs k unbound.
          // del·get(v) never legal: vacuous.
          return !GetIsNone(p);
        case kGet:
          return true;
      }
      break;
  }
  CCR_CHECK_MSG(false, "unknown operation pair (%s, %s)",
                p.ToString().c_str(), q.ToString().c_str());
  return false;
}

bool KvStore::IsUpdate(const Operation& op) const {
  return op.code() == kPut || op.code() == kDel;
}

std::string KvStore::EncodeState(const SpecState& state) const {
  const KvState& s = TypedSpecAutomaton<KvState>::Unwrap(state);
  std::string out;
  for (const auto& [key, value] : s.entries) {
    if (!out.empty()) out += ' ';
    out += EscapeToken(key);
    out += StrFormat(" %lld", static_cast<long long>(value));
  }
  return out;
}

StatusOr<std::unique_ptr<SpecState>> KvStore::DecodeState(
    std::string_view encoded) const {
  const std::vector<std::string_view> tokens = SplitTokens(encoded);
  if (tokens.size() % 2 != 0) {
    return Status::InvalidArgument("kv state needs key/value pairs: " +
                                   std::string(encoded));
  }
  KvState s;
  for (size_t i = 0; i < tokens.size(); i += 2) {
    StatusOr<std::string> key = UnescapeToken(tokens[i]);
    if (!key.ok()) return key.status();
    StatusOr<int64_t> value = ParseInt64Token(tokens[i + 1]);
    if (!value.ok()) return value.status();
    s.entries[*std::move(key)] = *value;
  }
  std::unique_ptr<SpecState> out =
      std::make_unique<TypedState<KvState>>(std::move(s));
  return out;
}

std::shared_ptr<KvStore> MakeKvStore(std::string object_name) {
  return std::make_shared<KvStore>(std::move(object_name));
}

}  // namespace ccr
