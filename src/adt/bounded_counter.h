// Copyright 2026 The ccr Authors.
//
// A bounded counter: a resource pool with both a floor (0) and a ceiling
// (the capacity) — warehouse slots, connection pools, O'Neil-escrow-style
// quantities (the paper's Section 8 pointer to [16]). Both directions are
// conditional:
//
//   [add(i), ok]    (i > 0): pre s + i <= cap, s' = s + i
//   [add(i), no]    (i > 0): pre s + i >  cap
//   [take(i), ok]   (i > 0): pre s >= i,       s' = s - i
//   [take(i), no]   (i > 0): pre s <  i
//   [level, n]              : pre s == n
//
// By the s <-> cap−s duality, `add` near the ceiling behaves exactly like
// the bank account's withdraw near the floor: successful adds do not
// commute forward with each other, successful takes "make room" for adds
// the way deposits fund withdrawals, and the NRBC asymmetry appears in both
// directions. The paper never analyzed such a type; the framework handles
// it unchanged.
//
// The abstract state space is finite (cap + 1 values), so the closed-form
// predicates are *decided exactly* by enumerating every state — no symbolic
// case analysis and no bounded approximation. This uses the fact that the
// spec is reduced (every state is observably distinct via [level, n]), so
// "looks like" between two reachable compositions is simply definedness
// implication plus end-state equality.

#ifndef CCR_ADT_BOUNDED_COUNTER_H_
#define CCR_ADT_BOUNDED_COUNTER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/adt.h"
#include "core/spec.h"

namespace ccr {

class BoundedCounterSpec final : public TypedSpecAutomaton<Int64State> {
 public:
  explicit BoundedCounterSpec(int64_t cap) : cap_(cap) {}

  std::string name() const override { return "BoundedCounter"; }
  Int64State Initial() const override { return Int64State{0}; }
  std::vector<std::pair<Value, Int64State>> TypedOutcomes(
      const Int64State& state, const Invocation& inv) const override;

  int64_t cap() const { return cap_; }

 private:
  int64_t cap_;
};

class BoundedCounter final : public Adt {
 public:
  static constexpr int kAdd = 0;
  static constexpr int kTake = 1;
  static constexpr int kLevel = 2;

  explicit BoundedCounter(std::string object_name = "POOL", int64_t cap = 4);

  const std::string& object_name() const { return object_name_; }
  int64_t cap() const { return spec_.cap(); }

  Invocation AddInv(int64_t amount) const;
  Invocation TakeInv(int64_t amount) const;
  Invocation LevelInv() const;

  Operation AddOk(int64_t amount) const;   // [add(i), ok]
  Operation AddNo(int64_t amount) const;   // [add(i), no]
  Operation TakeOk(int64_t amount) const;  // [take(i), ok]
  Operation TakeNo(int64_t amount) const;  // [take(i), no]
  Operation Level(int64_t n) const;        // [level, n]

  std::string name() const override { return "BoundedCounter"; }
  const SpecAutomaton& spec() const override { return spec_; }
  std::vector<Operation> Universe() const override;
  bool CommuteForward(const Operation& p, const Operation& q) const override;
  bool RightCommutesBackward(const Operation& p,
                             const Operation& q) const override;
  bool IsUpdate(const Operation& op) const override;
  std::optional<std::unique_ptr<SpecState>> InverseApply(
      const SpecState& state, const Operation& op) const override;
  bool supports_inverse() const override { return true; }

  bool supports_state_codec() const override { return true; }
  std::string EncodeState(const SpecState& state) const override;
  StatusOr<std::unique_ptr<SpecState>> DecodeState(
      std::string_view encoded) const override;

  std::vector<Operation> LevelProbes() const;

 private:
  // The unique (result, next-state) of `op`'s invocation at level `s`, as
  // (defined?, next). Exact: the spec is deterministic per state.
  bool StepAt(int64_t s, const Operation& op, int64_t* next) const;

  std::string object_name_;
  BoundedCounterSpec spec_;
};

std::shared_ptr<BoundedCounter> MakeBoundedCounter(
    std::string object_name = "POOL", int64_t cap = 4);

}  // namespace ccr

#endif  // CCR_ADT_BOUNDED_COUNTER_H_
