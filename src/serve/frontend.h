// Copyright 2026 The ccr Authors.
//
// ServeFrontend — the async serving boundary in front of TxnManager.
//
// Every PERF row before this layer was measured closed-loop: driver
// threads call Begin/Execute/Commit and park inside WaitDurable, one
// thread per in-flight transaction. A serving system cannot spend a
// thread per request. This front end accepts submissions from any number
// of independent clients (SubmitAsync: a batch of ops + a completion
// callback), queues them, and lets a small pool of batcher workers drain
// the queue — so the thread count is fixed while the in-flight request
// count is bounded only by the admission queue.
//
// The core is the BOUNDARY BATCHER. PR 8's ExecuteBatch amortized the
// directory pass, the lock sweeps, and the commit record *within one
// client's batch*; the batcher extends that economy *across clients*:
//
//   * COALESCING. A group of queued submissions is executed as ONE engine
//     transaction — their op lists concatenated (each submission's op
//     order preserved) through one ExecuteBatch pass (one directory walk,
//     canonical-ObjectId lock order, one mutex acquisition per object) and
//     committed under ONE multi-object commit record: one LSN, one frame,
//     one group-commit ack for the whole group. This is sound because the
//     coalesced transaction is serializable as the group's submissions in
//     queue order executed back-to-back, and each submission's atomicity
//     is preserved by the superset's all-or-nothing commit; the clients
//     were independent, so the extra "all committed together" coupling is
//     unobservable (they are acked together at one LSN, and recovery
//     replays the record all-or-nothing).
//   * DEMOTION. Coalescing must not let one client's failure poison its
//     neighbors, so a group whose combined ExecuteBatch (or commit) does
//     not succeed cleanly is demoted: each submission re-runs as its own
//     transaction (with bounded retries on retryable conflicts), so every
//     error is attributed to exactly the submission that caused it.
//     Demoted submissions still share the flush cycle's durability cost —
//     their records land in the same group-commit batch and their acks
//     fire off the same watermark advance.
//   * ASYNC ACK. Commits use TxnManager::CommitAsync + GroupCommitPipeline
//     ::OnDurable: no batcher thread parks in WaitDurable; completions are
//     invoked by the pipeline's flusher as the durable watermark passes
//     the group's LSN. The completion IS the acknowledgment — it fires
//     only when the submission's effects are recoverable (mode kGroup;
//     kSync/kRelaxed keep their WaitDurable contracts).
//   * ADMISSION CONTROL. The submission queue is bounded: past
//     queue_depth, SubmitAsync sheds with kResourceExhausted instead of
//     letting the queue (and every queued request's latency) grow without
//     bound. A shed submission touched no engine state — no transaction
//     was begun, no lock taken, no journal record written — and its
//     completion never fires (the synchronous return value is the
//     admission verdict).

#ifndef CCR_SERVE_FRONTEND_H_
#define CCR_SERVE_FRONTEND_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/value.h"
#include "txn/txn_manager.h"

namespace ccr {

// A submission's terminal outcome: OK + per-op results (in the caller's op
// order), or the error that felled it. Runs on a batcher or pipeline
// flusher thread — must return quickly and must not call back into the
// front end or block on the pipeline.
using ServeCompletion =
    std::function<void(const Status&, std::vector<Value>)>;

struct ServeFrontendOptions {
  // Admission bound: submissions shed with kResourceExhausted while this
  // many are already queued (high watermark of the submission queue).
  size_t queue_depth = 1024;
  // Most submissions coalesced into one engine transaction. Groups larger
  // than this split into several coalesced transactions.
  size_t max_group = 64;
  // How long a batcher waits for stragglers when it wakes to a group
  // smaller than max_group. 0: serve whatever is queued immediately.
  // This is the boundary's batching window; the group-commit pipeline's
  // max_delay_us is the durability layer's, and they compose.
  uint64_t linger_us = 100;
  // Batcher worker threads. 0: no threads — the owner drives the batcher
  // manually with PumpOnce() (deterministic tests).
  size_t workers = 1;
  // Retry budget for demoted submissions hitting retryable conflicts.
  int max_retries = 16;
};

// Cumulative counters. submitted == accepted + shed;
// accepted == completed_ok + completed_error once drained.
struct ServeStats {
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t shed = 0;
  uint64_t completed_ok = 0;
  uint64_t completed_error = 0;
  uint64_t groups = 0;             // batcher cycles that served >= 1 subm.
  uint64_t coalesced_txns = 0;     // multi-submission merged transactions
  uint64_t coalesced_submissions = 0;  // submissions served by those
  uint64_t demoted_groups = 0;     // groups that fell back per-submission
  uint64_t solo_txns = 0;          // single-submission transactions
  uint64_t retries = 0;            // demoted-path retry attempts
  uint64_t max_group_observed = 0;
  uint64_t max_queue_depth = 0;    // high watermark the queue reached
};

class ServeFrontend {
 public:
  // `manager` must outlive the front end. Uses manager->commit_pipeline()
  // (if set) for async acks.
  explicit ServeFrontend(TxnManager* manager,
                         ServeFrontendOptions options = {});
  ~ServeFrontend();  // Stop()

  ServeFrontend(const ServeFrontend&) = delete;
  ServeFrontend& operator=(const ServeFrontend&) = delete;

  // Submits one atomic batch of ops. OK: the submission was admitted and
  // `done` will be invoked exactly once, from a batcher or flusher thread,
  // once the outcome is decided (ack = durable watermark).
  // kResourceExhausted: shed at the door — nothing was executed and `done`
  // will never be invoked. kUnavailable: the front end is stopped.
  Status SubmitAsync(std::vector<BatchOp> ops, ServeCompletion done);

  // Future-returning convenience over SubmitAsync. An admission failure
  // resolves the future immediately with the shed/stopped status.
  std::future<std::pair<Status, std::vector<Value>>> Submit(
      std::vector<BatchOp> ops);

  // Blocks until every accepted submission has completed (queue empty and
  // no group in flight). Does not stop the workers.
  void Drain();

  // Drains, then stops the workers. Further submissions shed with
  // kUnavailable. Idempotent; the destructor calls it.
  void Stop();

  // Crash simulation: discard every queued submission (their completions
  // fire with kUnavailable — in a real crash they would simply never have
  // been acked) and stop the workers without serving what was queued.
  // Only crash tests call this.
  void Halt();

  ServeStats stats() const;
  TxnManager* manager() const { return manager_; }

  // Test hook (workers == 0): runs one batcher cycle on the calling
  // thread — takes up to max_group queued submissions, serves them, and
  // returns how many it took. No linger.
  size_t PumpOnce();

 private:
  struct Submission {
    std::vector<BatchOp> ops;
    ServeCompletion done;
  };

  void WorkerLoop();
  // Serves one dequeued group end to end (coalesce -> demote on failure).
  void ServeGroup(std::vector<Submission> group);
  // Runs `sub` as its own transaction with bounded retries; registers its
  // async ack or completes it inline.
  void ServeSolo(Submission sub);
  // Fires `done` and the completion counters. `s` decides ok vs error.
  void Complete(const Submission& sub, const Status& s,
                std::vector<Value> values);

  TxnManager* const manager_;
  const ServeFrontendOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for submissions / stop
  std::condition_variable drain_cv_;  // Drain waits for in-flight == 0
  std::deque<Submission> queue_;
  size_t in_flight_ = 0;  // accepted, not yet completed
  bool stop_ = false;
  bool halt_ = false;
  ServeStats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace ccr

#endif  // CCR_SERVE_FRONTEND_H_
