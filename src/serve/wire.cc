// Copyright 2026 The ccr Authors.

#include "serve/wire.h"

#include <cstdint>

#include "adt/state_codec.h"
#include "common/string_util.h"
#include "core/history_io.h"
#include "txn/journal_format.h"

namespace ccr {
namespace {

uint32_t ReadLe32(std::string_view buffer, size_t pos) {
  return static_cast<uint32_t>(static_cast<uint8_t>(buffer[pos])) |
         (static_cast<uint32_t>(static_cast<uint8_t>(buffer[pos + 1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(buffer[pos + 2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(buffer[pos + 3])) << 24);
}

// Splits the head frame off `buffer`: OK + payload + consumed, kUnavailable
// while the frame is still arriving, kInternal on checksum damage.
Status TakeFrame(std::string_view buffer, std::string_view* payload,
                 size_t* consumed) {
  *consumed = 0;
  if (buffer.size() < kJournalFrameHeaderSize) {
    return Status::Unavailable("incomplete frame header");
  }
  const uint32_t len = ReadLe32(buffer, 0);
  if (buffer.size() - kJournalFrameHeaderSize < len) {
    return Status::Unavailable("incomplete frame payload");
  }
  uint32_t intact_len = 0;
  if (!IntactJournalFrameAt(buffer, 0, &intact_len) || intact_len != len) {
    return Status::Internal("wire frame failed its checksum");
  }
  *payload = buffer.substr(kJournalFrameHeaderSize, len);
  *consumed = kJournalFrameHeaderSize + len;
  return Status::OK();
}

StatusOr<uint64_t> ParseU64(std::string_view token, const char* what) {
  uint64_t v = 0;
  if (token.empty()) return Status::InvalidArgument(StrFormat("empty %s", what));
  for (char c : token) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          StrFormat("bad %s: %.*s", what, static_cast<int>(token.size()),
                    token.data()));
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

StatusOr<std::string> Unescape(std::string_view token, const char* what) {
  StatusOr<std::string> raw = UnescapeToken(token);
  if (!raw.ok()) {
    return Status::InvalidArgument(
        StrFormat("bad %s token: %s", what, raw.status().ToString().c_str()));
  }
  return raw;
}

}  // namespace

std::string EncodeRequest(const WireRequest& request) {
  std::string payload = StrFormat(
      "req %llu %zu\n", static_cast<unsigned long long>(request.request_id),
      request.ops.size());
  for (const BatchOp& op : request.ops) {
    payload += StrFormat("op %s %s %d %s %zu",
                         EscapeToken(op.object).c_str(),
                         EscapeToken(op.factory).c_str(), op.inv.code(),
                         EscapeToken(op.inv.name()).c_str(),
                         op.inv.args().size());
    for (const Value& arg : op.inv.args()) {
      payload += ' ';
      payload += EscapeToken(SerializeValue(arg));
    }
    payload += '\n';
  }
  return FrameBlob(payload);
}

std::string EncodeResponse(const WireResponse& response) {
  std::string payload = StrFormat(
      "res %llu %d %s %zu\n",
      static_cast<unsigned long long>(response.request_id),
      static_cast<int>(response.code), EscapeToken(response.message).c_str(),
      response.values.size());
  for (const Value& value : response.values) {
    payload += "val ";
    payload += EscapeToken(SerializeValue(value));
    payload += '\n';
  }
  return FrameBlob(payload);
}

Status DecodeRequest(std::string_view buffer, WireRequest* out,
                     size_t* consumed) {
  std::string_view payload;
  CCR_RETURN_IF_ERROR(TakeFrame(buffer, &payload, consumed));
  std::vector<std::string_view> lines;
  while (!payload.empty()) {
    const size_t nl = payload.find('\n');
    if (nl == std::string_view::npos) {
      return Status::InvalidArgument("request payload missing newline");
    }
    lines.push_back(payload.substr(0, nl));
    payload.remove_prefix(nl + 1);
  }
  if (lines.empty()) return Status::InvalidArgument("empty request payload");
  std::vector<std::string_view> head = SplitTokens(lines[0]);
  if (head.size() != 3 || head[0] != "req") {
    return Status::InvalidArgument("malformed request header");
  }
  StatusOr<uint64_t> id = ParseU64(head[1], "request id");
  if (!id.ok()) return id.status();
  StatusOr<uint64_t> nops = ParseU64(head[2], "op count");
  if (!nops.ok()) return nops.status();
  if (lines.size() != 1 + *nops) {
    return Status::InvalidArgument("request op count disagrees with body");
  }
  WireRequest request;
  request.request_id = *id;
  request.ops.reserve(*nops);
  for (size_t i = 1; i < lines.size(); ++i) {
    std::vector<std::string_view> t = SplitTokens(lines[i]);
    if (t.size() < 6 || t[0] != "op") {
      return Status::InvalidArgument("malformed op line");
    }
    StatusOr<std::string> object = Unescape(t[1], "object");
    if (!object.ok()) return object.status();
    StatusOr<std::string> factory = Unescape(t[2], "factory");
    if (!factory.ok()) return factory.status();
    StatusOr<int64_t> code = ParseInt64Token(t[3]);
    if (!code.ok()) return code.status();
    StatusOr<std::string> name = Unescape(t[4], "op name");
    if (!name.ok()) return name.status();
    StatusOr<uint64_t> nargs = ParseU64(t[5], "arg count");
    if (!nargs.ok()) return nargs.status();
    if (t.size() != 6 + *nargs) {
      return Status::InvalidArgument("op arg count disagrees with line");
    }
    std::vector<Value> args;
    args.reserve(*nargs);
    for (size_t a = 6; a < t.size(); ++a) {
      StatusOr<std::string> literal = Unescape(t[a], "arg");
      if (!literal.ok()) return literal.status();
      StatusOr<Value> value = ParseValue(*literal);
      if (!value.ok()) return value.status();
      args.push_back(std::move(*value));
    }
    BatchOp op;
    op.object = *object;
    op.factory = std::move(*factory);
    op.inv = Invocation(std::move(*object), static_cast<int>(*code),
                        std::move(*name), std::move(args));
    request.ops.push_back(std::move(op));
  }
  *out = std::move(request);
  return Status::OK();
}

Status DecodeResponse(std::string_view buffer, WireResponse* out,
                      size_t* consumed) {
  std::string_view payload;
  CCR_RETURN_IF_ERROR(TakeFrame(buffer, &payload, consumed));
  std::vector<std::string_view> lines;
  while (!payload.empty()) {
    const size_t nl = payload.find('\n');
    if (nl == std::string_view::npos) {
      return Status::InvalidArgument("response payload missing newline");
    }
    lines.push_back(payload.substr(0, nl));
    payload.remove_prefix(nl + 1);
  }
  if (lines.empty()) return Status::InvalidArgument("empty response payload");
  std::vector<std::string_view> head = SplitTokens(lines[0]);
  if (head.size() != 5 || head[0] != "res") {
    return Status::InvalidArgument("malformed response header");
  }
  StatusOr<uint64_t> id = ParseU64(head[1], "request id");
  if (!id.ok()) return id.status();
  StatusOr<int64_t> code = ParseInt64Token(head[2]);
  if (!code.ok()) return code.status();
  if (*code < 0 || *code > static_cast<int64_t>(StatusCode::kResourceExhausted)) {
    return Status::InvalidArgument("response status code out of range");
  }
  StatusOr<std::string> message = Unescape(head[3], "status message");
  if (!message.ok()) return message.status();
  StatusOr<uint64_t> nvals = ParseU64(head[4], "value count");
  if (!nvals.ok()) return nvals.status();
  if (lines.size() != 1 + *nvals) {
    return Status::InvalidArgument("response value count disagrees with body");
  }
  WireResponse response;
  response.request_id = *id;
  response.code = static_cast<StatusCode>(*code);
  response.message = std::move(*message);
  response.values.reserve(*nvals);
  for (size_t i = 1; i < lines.size(); ++i) {
    std::vector<std::string_view> t = SplitTokens(lines[i]);
    if (t.size() != 2 || t[0] != "val") {
      return Status::InvalidArgument("malformed value line");
    }
    StatusOr<std::string> literal = Unescape(t[1], "value");
    if (!literal.ok()) return literal.status();
    StatusOr<Value> value = ParseValue(*literal);
    if (!value.ok()) return value.status();
    response.values.push_back(std::move(*value));
  }
  *out = std::move(response);
  return Status::OK();
}

}  // namespace ccr
