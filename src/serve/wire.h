// Copyright 2026 The ccr Authors.
//
// Length-prefixed binary request/response codec for the serving boundary.
// A frame is the journal's checksummed container ([u32 len][u32 crc32c]
// [payload], common/crc32c via txn/journal_format), so a socket server
// bolted onto ServeFrontend later inherits torn-read detection for free;
// the payload is the repo's line/token text format with history_io value
// literals (i:/s:/b:/u:) and state_codec percent-escaping for strings that
// may contain whitespace.
//
// Request payload:
//   req <request-id> <nops>
//   op <object> <factory> <code> <name> <nargs> [<arg>...]   x nops
// Response payload:
//   res <request-id> <status-code> <status-message> <nvals>
//   val <value>                                              x nvals
//
// <object>/<factory>/<name>/<status-message> and each <arg>/<value>
// (serialized first) are EscapeToken'd — a single space-free token each;
// an empty factory round-trips through the escaper's "%" sentinel.

#ifndef CCR_SERVE_WIRE_H_
#define CCR_SERVE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/value.h"
#include "txn/txn_manager.h"

namespace ccr {

// One client submission: a batch of ops executed and committed atomically.
struct WireRequest {
  uint64_t request_id = 0;
  std::vector<BatchOp> ops;
};

// The submission's outcome: per-op results in op order when code == kOk.
struct WireResponse {
  uint64_t request_id = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::vector<Value> values;
};

// Encode one message as a single checksummed frame (ready to write to a
// byte stream). Encoding never fails: any byte string escapes cleanly.
std::string EncodeRequest(const WireRequest& request);
std::string EncodeResponse(const WireResponse& response);

// Decodes one frame from the head of `buffer` (a cut of an incoming byte
// stream). On success fills `out`, sets `*consumed` to the frame's total
// size (strip that many bytes), and returns OK. An incomplete frame (the
// buffer ends mid-header or mid-payload) returns kUnavailable with
// *consumed == 0 — read more bytes and retry. A complete frame with a bad
// checksum or malformed payload returns kInternal/kInvalidArgument: the
// stream is corrupt and the connection should be dropped.
Status DecodeRequest(std::string_view buffer, WireRequest* out,
                     size_t* consumed);
Status DecodeResponse(std::string_view buffer, WireResponse* out,
                      size_t* consumed);

}  // namespace ccr

#endif  // CCR_SERVE_WIRE_H_
