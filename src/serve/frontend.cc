// Copyright 2026 The ccr Authors.

#include "serve/frontend.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "txn/group_commit.h"

namespace ccr {

ServeFrontend::ServeFrontend(TxnManager* manager,
                             ServeFrontendOptions options)
    : manager_(manager), options_(options) {
  CCR_CHECK(manager_ != nullptr);
  CCR_CHECK(options_.queue_depth > 0);
  CCR_CHECK(options_.max_group > 0);
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServeFrontend::~ServeFrontend() { Stop(); }

Status ServeFrontend::SubmitAsync(std::vector<BatchOp> ops,
                                  ServeCompletion done) {
  CCR_CHECK(done != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || halt_) {
      return Status::Unavailable("serve front end is stopped");
    }
    ++stats_.submitted;
    if (queue_.size() >= options_.queue_depth) {
      // The admission verdict is the synchronous return value: a shed
      // submission touched no engine state and its completion never fires.
      ++stats_.shed;
      return Status::ResourceExhausted("submission queue is full");
    }
    ++stats_.accepted;
    ++in_flight_;
    queue_.push_back(Submission{std::move(ops), std::move(done)});
    stats_.max_queue_depth =
        std::max<uint64_t>(stats_.max_queue_depth, queue_.size());
  }
  work_cv_.notify_one();
  return Status::OK();
}

std::future<std::pair<Status, std::vector<Value>>> ServeFrontend::Submit(
    std::vector<BatchOp> ops) {
  auto promise =
      std::make_shared<std::promise<std::pair<Status, std::vector<Value>>>>();
  std::future<std::pair<Status, std::vector<Value>>> future =
      promise->get_future();
  const Status admitted = SubmitAsync(
      std::move(ops), [promise](const Status& s, std::vector<Value> values) {
        promise->set_value({s, std::move(values)});
      });
  if (!admitted.ok()) {
    promise->set_value({admitted, {}});
  }
  return future;
}

void ServeFrontend::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.notify_all();
  drain_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

void ServeFrontend::Stop() {
  std::deque<Submission> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    // Manual-drive mode has no worker to drain the queue; whatever the
    // owner did not pump completes as kUnavailable so Stop terminates.
    if (workers_.empty()) dropped.swap(queue_);
  }
  work_cv_.notify_all();
  for (Submission& sub : dropped) {
    Complete(sub, Status::Unavailable("serve front end stopped"), {});
  }
  {
    // Wait for the queue to drain and every in-flight ack to fire (acks
    // come from the pipeline's flusher, which is still running — the
    // front end must be stopped/destroyed before its manager's pipeline).
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ServeFrontend::Halt() {
  std::deque<Submission> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    halt_ = true;
    stop_ = true;
    dropped.swap(queue_);
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // The machine "died" with these still queued: they were never executed
  // and never acked. kUnavailable keeps the accounting exact
  // (accepted == completed_ok + completed_error) for the harness.
  for (Submission& sub : dropped) {
    Complete(sub, Status::Unavailable("crashed with submission queued"), {});
  }
}

ServeStats ServeFrontend::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ServeFrontend::PumpOnce() {
  CCR_CHECK_MSG(options_.workers == 0,
                "PumpOnce is the manual drive for workers == 0");
  std::vector<Submission> group;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t take = std::min(queue_.size(), options_.max_group);
    group.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      group.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    if (!group.empty()) {
      ++stats_.groups;
      stats_.max_group_observed =
          std::max<uint64_t>(stats_.max_group_observed, group.size());
    }
  }
  const size_t took = group.size();
  if (took > 0) ServeGroup(std::move(group));
  return took;
}

void ServeFrontend::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || halt_ || !queue_.empty(); });
    if (halt_) return;  // Halt disposes of the queue itself
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    // Linger: let the group build toward max_group before paying the
    // serve pass. A fuller group amortizes the directory walk and shares
    // one commit record across more clients; the pipeline's own linger
    // then batches whatever distinct records remain.
    if (queue_.size() < options_.max_group && options_.linger_us > 0 &&
        !stop_) {
      work_cv_.wait_for(lock, std::chrono::microseconds(options_.linger_us),
                        [&] {
                          return queue_.size() >= options_.max_group ||
                                 stop_ || halt_;
                        });
      if (halt_) return;
      if (queue_.empty()) continue;
    }
    std::vector<Submission> group;
    const size_t take = std::min(queue_.size(), options_.max_group);
    group.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      group.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    ++stats_.groups;
    stats_.max_group_observed =
        std::max<uint64_t>(stats_.max_group_observed, group.size());
    lock.unlock();
    ServeGroup(std::move(group));
    lock.lock();
  }
}

void ServeFrontend::ServeGroup(std::vector<Submission> group) {
  if (group.size() == 1) {
    ServeSolo(std::move(group.front()));
    return;
  }
  // Coalesce: one engine transaction for the whole group. Concatenation in
  // queue order + ExecuteBatch's per-object order preservation make the
  // merged transaction serial-equivalent to the submissions executed
  // back-to-back in queue order.
  std::vector<BatchOp> combined;
  size_t total_ops = 0;
  for (const Submission& sub : group) total_ops += sub.ops.size();
  combined.reserve(total_ops);
  for (const Submission& sub : group) {
    combined.insert(combined.end(), sub.ops.begin(), sub.ops.end());
  }
  std::shared_ptr<Transaction> txn = manager_->Begin();
  StatusOr<std::vector<Value>> results =
      manager_->ExecuteBatch(txn.get(), combined);
  if (results.ok()) {
    StatusOr<Lsn> lsn = manager_->CommitAsync(txn.get());
    if (lsn.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.coalesced_txns;
        stats_.coalesced_submissions += group.size();
      }
      // One ack registration for the whole group: every member completes
      // off the same watermark advance, sliced back to its own results.
      auto fire = [this, group = std::move(group),
                   values = std::move(*results)]() mutable {
        size_t pos = 0;
        for (Submission& sub : group) {
          std::vector<Value> slice(values.begin() + pos,
                                   values.begin() + pos + sub.ops.size());
          pos += sub.ops.size();
          Complete(sub, Status::OK(), std::move(slice));
        }
      };
      GroupCommitPipeline* pipeline = manager_->commit_pipeline();
      if (pipeline != nullptr && *lsn != kNoLsn) {
        pipeline->OnDurable(*lsn, std::move(fire));
      } else {
        fire();
      }
      return;
    }
    // Commit lost a kill race; the transaction is already aborted.
  } else {
    // Any failure demotes the group: errors (and retries) must attribute
    // to exactly the submission that caused them, and an innocent
    // neighbor must not fail because a stranger's op did.
    manager_->Abort(txn.get());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.demoted_groups;
  }
  for (Submission& sub : group) ServeSolo(std::move(sub));
}

void ServeFrontend::ServeSolo(Submission sub) {
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.retries;
      }
      // Linear backoff keeps a demoted conflict loop from spinning the
      // batcher against whoever holds the contended lock.
      std::this_thread::sleep_for(std::chrono::microseconds(50 * attempt));
    }
    std::shared_ptr<Transaction> txn = manager_->Begin();
    StatusOr<std::vector<Value>> results =
        manager_->ExecuteBatch(txn.get(), sub.ops);
    if (!results.ok()) {
      manager_->Abort(txn.get());
      last = results.status();
      if (last.IsRetryable()) continue;
      Complete(sub, last, {});
      return;
    }
    StatusOr<Lsn> lsn = manager_->CommitAsync(txn.get());
    if (!lsn.ok()) {
      last = lsn.status();
      if (last.IsRetryable()) continue;
      Complete(sub, last, {});
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.solo_txns;
    }
    auto fire = [this, sub = std::move(sub),
                 values = std::move(*results)]() mutable {
      Complete(sub, Status::OK(), std::move(values));
    };
    GroupCommitPipeline* pipeline = manager_->commit_pipeline();
    if (pipeline != nullptr && *lsn != kNoLsn) {
      pipeline->OnDurable(*lsn, std::move(fire));
    } else {
      fire();
    }
    return;
  }
  Complete(sub, last, {});
}

void ServeFrontend::Complete(const Submission& sub, const Status& s,
                             std::vector<Value> values) {
  // The client's callback runs before the drain accounting moves, so
  // Drain() returning means every completion has finished, not merely
  // started.
  sub.done(s, std::move(values));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (s.ok()) {
      ++stats_.completed_ok;
    } else {
      ++stats_.completed_error;
    }
    CCR_CHECK(in_flight_ > 0);
    --in_flight_;
    // Notify UNDER mu_: this runs on the pipeline's flusher thread, and a
    // Stop()/Drain() waiter may destroy the front end (and this cv) the
    // moment it observes in_flight_ == 0. Broadcasting while holding the
    // mutex pins the waiter inside wait() until the broadcast has fully
    // returned and the lock is released — notify-after-unlock here is a
    // use-after-free of the cv. drain_cv_ has no hot waiters, so the
    // wake-into-held-mutex convoy this usually trades against is moot.
    if (in_flight_ == 0 && queue_.empty()) drain_cv_.notify_all();
  }
}

}  // namespace ccr
