// Copyright 2026 The ccr Authors.

#include "core/lock_modes.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace ccr {

std::string LockModeOf(const Operation& op,
                       const std::vector<Operation>& universe) {
  bool multi_result = false;
  for (const Operation& other : universe) {
    if (other.name() == op.name() && other.result() != op.result() &&
        !other.result().is_int() && !op.result().is_int()) {
      multi_result = true;
      break;
    }
  }
  if (multi_result) return op.name() + "/" + op.result().ToString();
  return op.name();
}

LockModeTable LockModeTable::Compile(const ConflictRelation& relation,
                                     const std::vector<Operation>& universe,
                                     std::string name) {
  LockModeTable table;
  table.name_ = std::move(name);
  for (const Operation& op : universe) {
    const std::string mode = LockModeOf(op, universe);
    if (table.index_.emplace(mode, table.modes_.size()).second) {
      table.modes_.push_back(mode);
    }
  }
  const size_t n = table.modes_.size();
  table.conflicts_.assign(n, std::vector<bool>(n, false));
  for (const Operation& requested : universe) {
    for (const Operation& held : universe) {
      if (relation.Conflicts(requested, held)) {
        table.conflicts_[table.index_.at(LockModeOf(requested, universe))]
                        [table.index_.at(LockModeOf(held, universe))] = true;
      }
    }
  }
  return table;
}

bool LockModeTable::Conflicts(const std::string& requested_mode,
                              const std::string& held_mode) const {
  auto r = index_.find(requested_mode);
  auto h = index_.find(held_mode);
  if (r == index_.end() || h == index_.end()) return true;  // conservative
  return conflicts_[r->second][h->second];
}

std::string LockModeTable::ToString() const {
  std::vector<std::string> header{name_};
  for (const std::string& mode : modes_) header.push_back(mode);
  TablePrinter printer(std::move(header));
  for (size_t i = 0; i < modes_.size(); ++i) {
    std::vector<std::string> row{modes_[i]};
    for (size_t j = 0; j < modes_.size(); ++j) {
      row.push_back(conflicts_[i][j] ? "x" : "+");
    }
    printer.AddRow(std::move(row));
  }
  return printer.ToString();
}

size_t LockModeTable::ConflictingPairs() const {
  size_t count = 0;
  for (const auto& row : conflicts_) {
    for (bool c : row) count += c;
  }
  return count;
}

namespace {

class TableConflict final : public ConflictRelation {
 public:
  TableConflict(std::shared_ptr<const LockModeTable> table,
                std::vector<Operation> universe)
      : table_(std::move(table)), universe_(std::move(universe)) {}

  std::string name() const override {
    return "table(" + table_->name() + ")";
  }

  bool Conflicts(const Operation& requested,
                 const Operation& held) const override {
    return table_->Conflicts(LockModeOf(requested, universe_),
                             LockModeOf(held, universe_));
  }

 private:
  std::shared_ptr<const LockModeTable> table_;
  std::vector<Operation> universe_;
};

}  // namespace

std::shared_ptr<ConflictRelation> MakeTableConflict(
    std::shared_ptr<const LockModeTable> table,
    std::vector<Operation> universe) {
  CCR_CHECK(table != nullptr);
  return std::make_shared<TableConflict>(std::move(table),
                                         std::move(universe));
}

}  // namespace ccr
