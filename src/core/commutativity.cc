// Copyright 2026 The ccr Authors.

#include "core/commutativity.h"

#include <deque>
#include <unordered_map>

#include "common/string_util.h"

namespace ccr {

size_t RelationTable::CountUnrelated() const {
  size_t count = 0;
  for (const auto& row : related) {
    for (bool r : row) {
      if (!r) ++count;
    }
  }
  return count;
}

bool RelationTable::IsSymmetric() const {
  for (size_t i = 0; i < related.size(); ++i) {
    for (size_t j = 0; j < related.size(); ++j) {
      if (related[i][j] != related[j][i]) return false;
    }
  }
  return true;
}

std::string RelationTable::ToString(const std::string& marker) const {
  std::vector<std::string> header{""};
  for (const Operation& op : ops) header.push_back(op.ToString());
  TablePrinter printer(std::move(header));
  for (size_t i = 0; i < ops.size(); ++i) {
    std::vector<std::string> row{ops[i].ToString()};
    for (size_t j = 0; j < ops.size(); ++j) {
      row.push_back(related[i][j] ? "." : marker);
    }
    printer.AddRow(std::move(row));
  }
  return printer.ToString();
}

CommutativityAnalyzer::CommutativityAnalyzer(const SpecAutomaton* spec,
                                             std::vector<Operation> universe,
                                             AnalysisOptions options)
    : spec_(spec), universe_(std::move(universe)), options_(options) {
  CCR_CHECK(spec_ != nullptr);
  if (options_.probe_universe.empty()) {
    options_.probe_universe = universe_;
  } else {
    // The probe universe extends the analysis universe.
    for (const Operation& op : universe_) {
      options_.probe_universe.push_back(op);
    }
  }
}

void CommutativityAnalyzer::EnsureReachable() {
  if (reachable_computed_) return;
  reachable_computed_ = true;

  // BFS over macro-states via universe operations, deduped by set equality.
  std::unordered_map<size_t, std::vector<size_t>> index;  // hash -> positions
  auto find_or_add = [&](StateSet set, OpSeq path) -> bool {
    const size_t h = set.Hash();
    for (size_t pos : index[h]) {
      if (reachable_[pos].states.Equals(set)) return false;
    }
    index[h].push_back(reachable_.size());
    reachable_.push_back(ReachableState{std::move(set), std::move(path)});
    return true;
  };

  find_or_add(StateSet::Singleton(spec_->InitialState()), {});
  std::deque<size_t> frontier{0};
  while (!frontier.empty() && reachable_.size() < options_.max_macro_states) {
    const size_t cur = frontier.front();
    frontier.pop_front();
    if (static_cast<int>(reachable_[cur].path.size()) >=
        options_.reach_depth) {
      continue;
    }
    for (const Operation& op : universe_) {
      StateSet next = reachable_[cur].states.Step(*spec_, op);
      if (next.empty()) continue;
      OpSeq path = reachable_[cur].path;
      path.push_back(op);
      if (find_or_add(std::move(next), std::move(path))) {
        frontier.push_back(reachable_.size() - 1);
        if (reachable_.size() >= options_.max_macro_states) break;
      }
    }
  }
}

const std::vector<ReachableState>& CommutativityAnalyzer::Reachable() {
  EnsureReachable();
  return reachable_;
}

bool CommutativityAnalyzer::CommuteForward(const Operation& p,
                                           const Operation& q) {
  const PairKey key = Key(p, q);
  auto it = fc_memo_.find(key);
  if (it != fc_memo_.end()) return it->second;
  const bool result = !FindFcViolation(p, q).has_value();
  fc_memo_[key] = result;
  fc_memo_[Key(q, p)] = result;  // FC is symmetric (Lemma 8)
  return result;
}

bool CommutativityAnalyzer::RightCommutesBackward(const Operation& p,
                                                  const Operation& q) {
  const PairKey key = Key(p, q);
  auto it = rbc_memo_.find(key);
  if (it != rbc_memo_.end()) return it->second;
  const bool result = !FindRbcViolation(p, q).has_value();
  rbc_memo_[key] = result;
  return result;
}

std::optional<RbcViolation> CommutativityAnalyzer::FindRbcViolation(
    const Operation& p, const Operation& q) {
  EnsureReachable();
  for (const ReachableState& rs : reachable_) {
    StateSet after_qp = rs.states.Step(*spec_, q).Step(*spec_, p);
    if (after_qp.empty()) continue;  // αQP ∉ Spec: vacuous at this α
    StateSet after_pq = rs.states.Step(*spec_, p).Step(*spec_, q);
    std::optional<OpSeq> rho = FindDistinguishingFuture(
        *spec_, after_qp, after_pq, options_.probe_universe, options_.probe);
    if (rho.has_value()) {
      return RbcViolation{rs.path, std::move(*rho)};
    }
  }
  return std::nullopt;
}

std::optional<FcViolation> CommutativityAnalyzer::FindFcViolation(
    const Operation& p, const Operation& q) {
  EnsureReachable();
  for (const ReachableState& rs : reachable_) {
    StateSet after_p = rs.states.Step(*spec_, p);
    if (after_p.empty()) continue;  // αP ∉ Spec
    StateSet after_q = rs.states.Step(*spec_, q);
    if (after_q.empty()) continue;  // αQ ∉ Spec
    StateSet after_pq = after_p.Step(*spec_, q);
    if (after_pq.empty()) {
      // Case 1: αPQ ∉ Spec.
      FcViolation v;
      v.alpha = rs.path;
      v.pq_illegal = true;
      return v;
    }
    StateSet after_qp = after_q.Step(*spec_, p);
    if (after_qp.empty()) {
      // αQP ∉ Spec is case 1 with the roles of P and Q swapped; report it in
      // a canonical direction so callers can swap.
      FcViolation v;
      v.alpha = rs.path;
      v.pq_illegal = true;
      v.rho_after_pq = false;  // the *QP* side is the illegal one
      return v;
    }
    // Case 2: a future legal after PQ but not after QP, or vice versa.
    std::optional<OpSeq> rho = FindDistinguishingFuture(
        *spec_, after_pq, after_qp, options_.probe_universe, options_.probe);
    if (rho.has_value()) {
      FcViolation v;
      v.alpha = rs.path;
      v.rho = std::move(*rho);
      v.rho_after_pq = true;  // αPQρ ∈ Spec, αQPρ ∉ Spec
      return v;
    }
    rho = FindDistinguishingFuture(*spec_, after_qp, after_pq,
                                   options_.probe_universe, options_.probe);
    if (rho.has_value()) {
      FcViolation v;
      v.alpha = rs.path;
      v.rho = std::move(*rho);
      v.rho_after_pq = false;  // αQPρ ∈ Spec, αPQρ ∉ Spec
      return v;
    }
  }
  return std::nullopt;
}

RelationTable CommutativityAnalyzer::ComputeFcTable() {
  RelationTable table;
  table.ops = universe_;
  table.related.assign(universe_.size(),
                       std::vector<bool>(universe_.size(), false));
  for (size_t i = 0; i < universe_.size(); ++i) {
    for (size_t j = i; j < universe_.size(); ++j) {
      const bool fc = CommuteForward(universe_[i], universe_[j]);
      table.related[i][j] = fc;
      table.related[j][i] = fc;
    }
  }
  return table;
}

RelationTable CommutativityAnalyzer::ComputeRbcTable() {
  RelationTable table;
  table.ops = universe_;
  table.related.assign(universe_.size(),
                       std::vector<bool>(universe_.size(), false));
  for (size_t i = 0; i < universe_.size(); ++i) {
    for (size_t j = 0; j < universe_.size(); ++j) {
      table.related[i][j] = RightCommutesBackward(universe_[i], universe_[j]);
    }
  }
  return table;
}

}  // namespace ccr
