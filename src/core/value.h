// Copyright 2026 The ccr Authors.
//
// Value: the dynamically-typed argument/result type for ADT operations.
// Keeping arguments and results in a small variant lets the formal machinery
// (histories, specs, commutativity analysis) stay generic over ADTs.

#ifndef CCR_CORE_VALUE_H_
#define CCR_CORE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace ccr {

// A unit/int64/bool/string value. `Unit` is the result of operations that
// return nothing interesting beyond "ok" semantics carried by the operation
// name itself.
class Value {
 public:
  struct Unit {
    bool operator==(const Unit&) const { return true; }
  };

  Value() : rep_(Unit{}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(bool v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  static Value MakeUnit() { return Value(); }

  bool is_unit() const { return std::holds_alternative<Unit>(rep_); }
  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_bool() const { return std::holds_alternative<bool>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }

  // Typed accessors; checked fatal error on type mismatch.
  int64_t AsInt() const;
  bool AsBool() const;
  const std::string& AsString() const;

  bool operator==(const Value& other) const { return rep_ == other.rep_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  size_t Hash() const;

  // "()" for unit, decimal for ints, "true"/"false", quoted-less strings.
  std::string ToString() const;

 private:
  std::variant<Unit, int64_t, bool, std::string> rep_;
};

// Hashes a list of values (order-sensitive).
size_t HashValues(const std::vector<Value>& values);

// Renders "v1,v2,...".
std::string ValuesToString(const std::vector<Value>& values);

}  // namespace ccr

#endif  // CCR_CORE_VALUE_H_
