// Copyright 2026 The ccr Authors.

#include "core/event.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace ccr {

std::string TxnName(TxnId txn) {
  if (txn == kInvalidTxn) return "?";
  if (txn <= 26) return std::string(1, static_cast<char>('A' + txn - 1));
  return StrFormat("T%llu", static_cast<unsigned long long>(txn));
}

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kInvoke:
      return "invoke";
    case EventKind::kResponse:
      return "response";
    case EventKind::kCommit:
      return "commit";
    case EventKind::kAbort:
      return "abort";
  }
  return "unknown";
}

Event Event::Invoke(TxnId txn, Invocation inv) {
  Event e(EventKind::kInvoke, txn, inv.object());
  e.inv_ = std::move(inv);
  return e;
}

Event Event::Response(TxnId txn, ObjectId object, Value result) {
  Event e(EventKind::kResponse, txn, std::move(object));
  e.result_ = std::move(result);
  return e;
}

Event Event::Commit(TxnId txn, ObjectId object) {
  return Event(EventKind::kCommit, txn, std::move(object));
}

Event Event::Abort(TxnId txn, ObjectId object) {
  return Event(EventKind::kAbort, txn, std::move(object));
}

const Invocation& Event::invocation() const {
  CCR_CHECK_MSG(is_invoke(), "invocation() on %s event",
                EventKindName(kind_));
  return inv_;
}

const Value& Event::result() const {
  CCR_CHECK_MSG(is_response(), "result() on %s event", EventKindName(kind_));
  return result_;
}

bool Event::operator==(const Event& other) const {
  if (kind_ != other.kind_ || txn_ != other.txn_ || object_ != other.object_) {
    return false;
  }
  if (is_invoke()) return inv_ == other.inv_;
  if (is_response()) return result_ == other.result_;
  return true;
}

std::string Event::ToString() const {
  switch (kind_) {
    case EventKind::kInvoke:
      return StrFormat("<%s, %s, %s>", inv_.ToString().c_str(),
                       object_.c_str(), TxnName(txn_).c_str());
    case EventKind::kResponse:
      return StrFormat("<%s, %s, %s>", result_.ToString().c_str(),
                       object_.c_str(), TxnName(txn_).c_str());
    case EventKind::kCommit:
      return StrFormat("<commit, %s, %s>", object_.c_str(),
                       TxnName(txn_).c_str());
    case EventKind::kAbort:
      return StrFormat("<abort, %s, %s>", object_.c_str(),
                       TxnName(txn_).c_str());
  }
  return "<invalid>";
}

}  // namespace ccr
