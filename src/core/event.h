// Copyright 2026 The ccr Authors.
//
// Events — the paper's Section 2 vocabulary. A computation is a sequence of
// invocation, response, commit, and abort events at the interface between
// transactions and objects.

#ifndef CCR_CORE_EVENT_H_
#define CCR_CORE_EVENT_H_

#include <cstdint>
#include <string>

#include "core/operation.h"

namespace ccr {

// Transactions are identified by positive integers; 0 is invalid.
using TxnId = uint64_t;
inline constexpr TxnId kInvalidTxn = 0;

// Pretty name for a transaction id: "A".."Z" for 1..26, "T<n>" beyond.
std::string TxnName(TxnId txn);

enum class EventKind {
  kInvoke,    // <inv, X, A>
  kResponse,  // <res, X, A>
  kCommit,    // <commit, X, A>
  kAbort,     // <abort, X, A>
};

const char* EventKindName(EventKind kind);

// One event. Invoke events carry the invocation; response events carry the
// result value; commit/abort carry neither.
class Event {
 public:
  static Event Invoke(TxnId txn, Invocation inv);
  static Event Response(TxnId txn, ObjectId object, Value result);
  static Event Commit(TxnId txn, ObjectId object);
  static Event Abort(TxnId txn, ObjectId object);

  EventKind kind() const { return kind_; }
  TxnId txn() const { return txn_; }
  const ObjectId& object() const { return object_; }

  // Valid only for kInvoke events.
  const Invocation& invocation() const;
  // Valid only for kResponse events.
  const Value& result() const;

  bool is_invoke() const { return kind_ == EventKind::kInvoke; }
  bool is_response() const { return kind_ == EventKind::kResponse; }
  bool is_commit() const { return kind_ == EventKind::kCommit; }
  bool is_abort() const { return kind_ == EventKind::kAbort; }

  bool operator==(const Event& other) const;

  // "<withdraw(3), BA, B>" / "<ok, BA, B>" / "<commit, BA, A>".
  std::string ToString() const;

 private:
  Event(EventKind kind, TxnId txn, ObjectId object)
      : kind_(kind), txn_(txn), object_(std::move(object)) {}

  EventKind kind_;
  TxnId txn_;
  ObjectId object_;
  Invocation inv_;  // kInvoke only
  Value result_;    // kResponse only
};

}  // namespace ccr

#endif  // CCR_CORE_EVENT_H_
