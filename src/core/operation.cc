// Copyright 2026 The ccr Authors.

#include "core/operation.h"

#include <functional>

#include "common/macros.h"
#include "common/string_util.h"

namespace ccr {

const Value& Invocation::arg(size_t i) const {
  CCR_CHECK_MSG(i < args_.size(), "arg %zu out of range (%zu args) for %s", i,
                args_.size(), name_.c_str());
  return args_[i];
}

bool Invocation::operator==(const Invocation& other) const {
  return code_ == other.code_ && object_ == other.object_ &&
         name_ == other.name_ && args_ == other.args_;
}

size_t Invocation::Hash() const {
  size_t h = std::hash<std::string>()(object_);
  h = h * 31 + static_cast<size_t>(code_);
  h = h * 31 + std::hash<std::string>()(name_);
  h = h * 31 + HashValues(args_);
  return h;
}

std::string Invocation::ToString() const {
  if (args_.empty()) return name_;
  return StrFormat("%s(%s)", name_.c_str(), ValuesToString(args_).c_str());
}

bool Operation::operator==(const Operation& other) const {
  return inv_ == other.inv_ && result_ == other.result_;
}

size_t Operation::Hash() const {
  return inv_.Hash() * 31 + result_.Hash();
}

std::string Operation::ToString() const {
  return StrFormat("%s:[%s,%s]", object().c_str(), inv_.ToString().c_str(),
                   result_.ToString().c_str());
}

std::string OpSeqToString(const OpSeq& seq) {
  if (seq.empty()) return "Λ";
  std::vector<std::string> parts;
  parts.reserve(seq.size());
  for (const Operation& op : seq) parts.push_back(op.ToString());
  return StrJoin(parts, " . ");
}

}  // namespace ccr
