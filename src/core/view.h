// Copyright 2026 The ccr Authors.
//
// View functions — the paper's abstraction of recovery (Section 5). A View
// maps a history and an active transaction to the "serial state" (an
// operation sequence) used to determine the legal responses to the
// transaction's pending invocation.

#ifndef CCR_CORE_VIEW_H_
#define CCR_CORE_VIEW_H_

#include <memory>
#include <string>

#include "core/history.h"

namespace ccr {

class View {
 public:
  virtual ~View() = default;

  virtual std::string name() const = 0;

  // The serial state for active transaction `txn` in history `h`.
  virtual OpSeq Compute(const History& h, TxnId txn) const = 0;
};

// Update-in-place: UIP(H,A) = Opseq(H | ACT − Aborted(H)) — every operation
// of every non-aborted transaction, in response order. The same for every
// transaction: there is one "current" state.
class UipView final : public View {
 public:
  std::string name() const override { return "UIP"; }
  OpSeq Compute(const History& h, TxnId txn) const override;
};

// Deferred update: DU(H,A) = Opseq(Serial(H|Committed, CommitOrder)) ·
// Opseq(H|A) — committed transactions' operations in commit order, then A's
// own operations (A's private workspace / intentions list).
class DuView final : public View {
 public:
  std::string name() const override { return "DU"; }
  OpSeq Compute(const History& h, TxnId txn) const override;
};

std::shared_ptr<const View> MakeUipView();
std::shared_ptr<const View> MakeDuView();

}  // namespace ccr

#endif  // CCR_CORE_VIEW_H_
