// Copyright 2026 The ccr Authors.
//
// The paper's abstract object implementation I(X, Spec, View, Conflict)
// (Section 4): an I/O automaton whose state is the history of events so far.
// A response event <R, X, A> is enabled iff
//   (1) A has a pending invocation I,
//   (2) the operation X:[I,R] conflicts with no operation already executed
//       by another active transaction, and
//   (3) View(s, A) · X:[I,R] ∈ Spec(X).
//
// This class is the executable form of that automaton. It powers the random
// schedule generators, the Theorem 9/10 experiments, and differential tests
// against the concrete engine in src/txn.

#ifndef CCR_CORE_IDEAL_OBJECT_H_
#define CCR_CORE_IDEAL_OBJECT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/conflict_relation.h"
#include "core/history.h"
#include "core/spec.h"
#include "core/view.h"

namespace ccr {

class IdealObject {
 public:
  IdealObject(ObjectId id, std::shared_ptr<const SpecAutomaton> spec,
              std::shared_ptr<const View> view,
              std::shared_ptr<const ConflictRelation> conflict);

  const ObjectId& id() const { return id_; }
  const History& history() const { return history_; }
  const SpecAutomaton& spec() const { return *spec_; }
  const View& view() const { return *view_; }
  const ConflictRelation& conflict() const { return *conflict_; }

  // Input actions — always enabled subject to well-formedness.
  Status Invoke(TxnId txn, Invocation inv);
  Status Commit(TxnId txn);
  Status Abort(TxnId txn);

  // Results R for which the response event is enabled right now (empty when
  // the transaction is blocked by a conflict or no result is legal).
  std::vector<Value> EnabledResponses(TxnId txn) const;

  // Appends a response event with the first enabled result. kConflict when
  // blocked by a concurrency conflict, kIllegalState when there is no
  // pending invocation or no legal result.
  StatusOr<Value> Respond(TxnId txn);

  // Appends a response event with a specific result if enabled.
  Status RespondWith(TxnId txn, const Value& result);

  // True if the candidate operation conflicts with an operation executed by
  // a different active transaction (precondition (2) above).
  bool HasConflict(TxnId txn, const Operation& candidate) const;

 private:
  ObjectId id_;
  std::shared_ptr<const SpecAutomaton> spec_;
  std::shared_ptr<const View> view_;
  std::shared_ptr<const ConflictRelation> conflict_;
  History history_;
};

// Feeds `events` into `object`, verifying that every event is permitted —
// in particular that every response is enabled (conflict-free and
// spec-legal) when it occurs. Used to check that a constructed history is
// in L(I(X, Spec, View, Conflict)).
Status ReplayHistory(IdealObject* object, const History& history);

}  // namespace ccr

#endif  // CCR_CORE_IDEAL_OBJECT_H_
