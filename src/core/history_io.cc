// Copyright 2026 The ccr Authors.

#include "core/history_io.h"

#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace ccr {

std::string SerializeValue(const Value& value) {
  if (value.is_unit()) return "u:";
  if (value.is_int()) {
    return StrFormat("i:%lld", static_cast<long long>(value.AsInt()));
  }
  if (value.is_bool()) return value.AsBool() ? "b:true" : "b:false";
  return "s:" + value.AsString();
}

StatusOr<Value> ParseValue(const std::string& token) {
  if (token.size() < 2 || token[1] != ':') {
    return Status::InvalidArgument("malformed value literal: " + token);
  }
  const std::string body = token.substr(2);
  switch (token[0]) {
    case 'u':
      if (!body.empty()) {
        return Status::InvalidArgument("unit literal with payload: " + token);
      }
      return Value::MakeUnit();
    case 'i': {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(body.c_str(), &end, 10);
      if (body.empty() || *end != '\0' || errno != 0) {
        return Status::InvalidArgument("bad int literal: " + token);
      }
      return Value(static_cast<int64_t>(v));
    }
    case 'b':
      if (body == "true") return Value(true);
      if (body == "false") return Value(false);
      return Status::InvalidArgument("bad bool literal: " + token);
    case 's':
      return Value(body);
    default:
      return Status::InvalidArgument("unknown value tag: " + token);
  }
}

std::string SerializeHistory(const History& history) {
  std::string out;
  for (const Event& e : history.events()) {
    switch (e.kind()) {
      case EventKind::kInvoke: {
        const Invocation& inv = e.invocation();
        out += StrFormat("invoke %llu %s %d %s",
                         static_cast<unsigned long long>(e.txn()),
                         e.object().c_str(), inv.code(), inv.name().c_str());
        for (const Value& arg : inv.args()) {
          out += " ";
          out += SerializeValue(arg);
        }
        break;
      }
      case EventKind::kResponse:
        out += StrFormat("response %llu %s %s",
                         static_cast<unsigned long long>(e.txn()),
                         e.object().c_str(),
                         SerializeValue(e.result()).c_str());
        break;
      case EventKind::kCommit:
        out += StrFormat("commit %llu %s",
                         static_cast<unsigned long long>(e.txn()),
                         e.object().c_str());
        break;
      case EventKind::kAbort:
        out += StrFormat("abort %llu %s",
                         static_cast<unsigned long long>(e.txn()),
                         e.object().c_str());
        break;
    }
    out += '\n';
  }
  return out;
}

namespace {

Status LineError(size_t line_no, const std::string& message) {
  return Status::InvalidArgument(
      StrFormat("line %zu: %s", line_no, message.c_str()));
}

}  // namespace

StatusOr<History> ParseHistory(const std::string& text) {
  History history;
  std::istringstream lines(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    unsigned long long txn_raw = 0;
    std::string object;
    if (!(fields >> kind >> txn_raw >> object)) {
      return LineError(line_no, "expected '<kind> <txn> <object>'");
    }
    const TxnId txn = static_cast<TxnId>(txn_raw);
    Status status = Status::OK();
    if (kind == "invoke") {
      int code = 0;
      std::string name;
      if (!(fields >> code >> name)) {
        return LineError(line_no, "invoke needs '<code> <name>'");
      }
      std::vector<Value> args;
      std::string token;
      while (fields >> token) {
        StatusOr<Value> v = ParseValue(token);
        if (!v.ok()) return LineError(line_no, v.status().message());
        args.push_back(std::move(*v));
      }
      status = history.Append(
          Event::Invoke(txn, Invocation(object, code, name, args)));
    } else if (kind == "response") {
      std::string token;
      if (!(fields >> token)) {
        return LineError(line_no, "response needs a result value");
      }
      StatusOr<Value> v = ParseValue(token);
      if (!v.ok()) return LineError(line_no, v.status().message());
      status = history.Append(Event::Response(txn, object, *v));
    } else if (kind == "commit") {
      status = history.Append(Event::Commit(txn, object));
    } else if (kind == "abort") {
      status = history.Append(Event::Abort(txn, object));
    } else {
      return LineError(line_no, "unknown event kind '" + kind + "'");
    }
    if (!status.ok()) return LineError(line_no, status.message());
  }
  return history;
}

}  // namespace ccr
