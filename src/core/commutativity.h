// Copyright 2026 The ccr Authors.
//
// Commutativity analysis (paper Section 6).
//
//   FC(P,Q): P and Q commute forward iff for every α with αP ∈ Spec and
//            αQ ∈ Spec: αPQ ∈ Spec, αQP ∈ Spec, and αPQ equieffective αQP.
//   RBC(P,Q): P right-commutes-backward with Q iff for every α,
//            αQP looks like αPQ. NOT symmetric in general.
//
// For an automaton, the ∀α quantifier ranges over macro-states reachable by
// legal sequences. The analyzer explores the macro-states reachable using a
// finite operation universe (the same universe the ADT declares for its
// representative operations), so results are exact relative to that closure;
// every library ADT chooses a universe that covers its behavior, and tests
// cross-check the analyzer against the closed-form predicates.
//
// The analyzer also produces *witnesses*: the (α, ρ) sequences that the
// only-if directions of Theorems 9 and 10 turn into non-dynamic-atomic
// histories.

#ifndef CCR_CORE_COMMUTATIVITY_H_
#define CCR_CORE_COMMUTATIVITY_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/equieffective.h"
#include "core/spec.h"

namespace ccr {

// Exploration and probing bounds.
struct AnalysisOptions {
  size_t max_macro_states = 4096;  // reachable macro-state cap
  int reach_depth = 10;            // max length of α paths explored
  ProbeOptions probe;              // bounds for looks-like probing
  // Operations used as probe futures ρ. Empty means "use the analysis
  // universe". ADTs whose observers are argument-indexed (balance(j),
  // size(n), ...) should extend this with observers covering the reachable
  // range so bounded probing distinguishes all distinguishable states.
  std::vector<Operation> probe_universe;
};

// A reachable macro-state together with one access path α.
struct ReachableState {
  StateSet states;
  OpSeq path;
};

// A witness that RBC(P,Q) fails: αQPρ ∈ Spec but αPQρ ∉ Spec
// (the raw material of the Theorem 9 only-if construction).
struct RbcViolation {
  OpSeq alpha;
  OpSeq rho;
};

// A witness that FC(P,Q) fails (Theorem 10 only-if construction). Either
// case 1: αP, αQ ∈ Spec but αPQ ∉ Spec; or case 2: αPQ and αQP are not
// equieffective, distinguished by ρ. `rho_after_pq` reports the direction:
// true means αPQρ ∈ Spec and αQPρ ∉ Spec.
struct FcViolation {
  OpSeq alpha;
  bool pq_illegal = false;
  OpSeq rho;
  bool rho_after_pq = true;
};

// A boolean relation over a finite operation universe, used to render the
// paper's Figure 6-1 / 6-2 matrices and to count conflicts.
struct RelationTable {
  std::vector<Operation> ops;
  // related[i][j]: ops[i] related to ops[j] (e.g. commutes / right-commutes).
  std::vector<std::vector<bool>> related;

  // Number of (i,j) pairs with related[i][j] == false (the conflicts).
  size_t CountUnrelated() const;
  bool IsSymmetric() const;

  // Matrix with `marker` (default "x") where NOT related, "." elsewhere —
  // the layout of the paper's figures, which mark non-commuting pairs.
  std::string ToString(const std::string& marker = "x") const;
};

// Computes FC / RBC over a finite universe by reachable-macro-state
// exploration. Results per pair are memoized.
class CommutativityAnalyzer {
 public:
  CommutativityAnalyzer(const SpecAutomaton* spec,
                        std::vector<Operation> universe,
                        AnalysisOptions options = {});

  const std::vector<Operation>& universe() const { return universe_; }
  const SpecAutomaton& spec() const { return *spec_; }

  // Forward commutativity of p and q (symmetric).
  bool CommuteForward(const Operation& p, const Operation& q);
  // p right-commutes-backward with q (NOT symmetric).
  bool RightCommutesBackward(const Operation& p, const Operation& q);

  // The complements: NFC / NRBC membership.
  bool Nfc(const Operation& p, const Operation& q) {
    return !CommuteForward(p, q);
  }
  bool Nrbc(const Operation& p, const Operation& q) {
    return !RightCommutesBackward(p, q);
  }

  // Witness extraction for the only-if constructions; nullopt when the pair
  // actually commutes (within bounds).
  std::optional<RbcViolation> FindRbcViolation(const Operation& p,
                                               const Operation& q);
  std::optional<FcViolation> FindFcViolation(const Operation& p,
                                             const Operation& q);

  // Full relation matrices over the universe.
  RelationTable ComputeFcTable();
  RelationTable ComputeRbcTable();

  // The macro-states explored (for diagnostics / benches).
  const std::vector<ReachableState>& Reachable();

 private:
  using PairKey = std::pair<std::string, std::string>;
  static PairKey Key(const Operation& p, const Operation& q) {
    return {p.ToString(), q.ToString()};
  }

  void EnsureReachable();

  const SpecAutomaton* spec_;
  std::vector<Operation> universe_;
  AnalysisOptions options_;

  bool reachable_computed_ = false;
  std::vector<ReachableState> reachable_;

  std::map<PairKey, bool> fc_memo_;
  std::map<PairKey, bool> rbc_memo_;
};

}  // namespace ccr

#endif  // CCR_CORE_COMMUTATIVITY_H_
