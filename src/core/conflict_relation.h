// Copyright 2026 The ccr Authors.
//
// Conflict relations — the paper's abstraction of concurrency control.
// A response for operation `requested` by transaction A is enabled only if
// (requested, held) ∉ Conflict for every operation `held` already executed
// by a different active transaction.
//
// Orientation matters because NRBC is not symmetric: `requested` is the
// operation about to respond (the one the serializability argument pushes
// backward past the held operations of later-serialized transactions).

#ifndef CCR_CORE_CONFLICT_RELATION_H_
#define CCR_CORE_CONFLICT_RELATION_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/adt.h"
#include "core/operation.h"

namespace ccr {

class ConflictRelation {
 public:
  virtual ~ConflictRelation() = default;

  virtual std::string name() const = 0;

  // True iff `requested` conflicts with `held`.
  virtual bool Conflicts(const Operation& requested,
                         const Operation& held) const = 0;
};

// Wraps an arbitrary predicate.
class FunctionConflict final : public ConflictRelation {
 public:
  using Predicate = std::function<bool(const Operation&, const Operation&)>;

  FunctionConflict(std::string name, Predicate predicate)
      : name_(std::move(name)), predicate_(std::move(predicate)) {}

  std::string name() const override { return name_; }
  bool Conflicts(const Operation& requested,
                 const Operation& held) const override {
    return predicate_(requested, held);
  }

 private:
  std::string name_;
  Predicate predicate_;
};

// NFC(Spec): conflicts exactly when the operations do not commute forward.
// The relation Theorem 10 proves necessary and sufficient for DU recovery.
std::shared_ptr<ConflictRelation> MakeNfcConflict(
    std::shared_ptr<const Adt> adt);

// NRBC(Spec): `requested` conflicts with `held` exactly when `requested`
// does not right-commute-backward with `held`. Necessary and sufficient for
// UIP recovery (Theorem 9).
std::shared_ptr<ConflictRelation> MakeNrbcConflict(
    std::shared_ptr<const Adt> adt);

// The symmetric closure of NRBC — what earlier algorithms (and any framework
// that insists on symmetric conflict relations) must use with UIP. Strictly
// more conflicts than NRBC whenever NRBC is asymmetric.
std::shared_ptr<ConflictRelation> MakeSymmetricNrbcConflict(
    std::shared_ptr<const Adt> adt);

// Classical read/write locking: conflict unless both operations are
// read-only. The baseline every type-specific relation is compared against.
std::shared_ptr<ConflictRelation> MakeReadWriteConflict(
    std::shared_ptr<const Adt> adt);

// No conflicts at all (maximally permissive, generally incorrect).
std::shared_ptr<ConflictRelation> MakeEmptyConflict();

// Every pair conflicts (serial execution).
std::shared_ptr<ConflictRelation> MakeTotalConflict();

// Symmetric closure of an arbitrary relation.
std::shared_ptr<ConflictRelation> MakeSymmetricClosure(
    std::shared_ptr<const ConflictRelation> inner);

// `inner` with the single ordered pair (requested==p, held==q) removed —
// the deficient relations used by the Theorem 9/10 only-if experiments.
std::shared_ptr<ConflictRelation> MakeExceptPair(
    std::shared_ptr<const ConflictRelation> inner, Operation p, Operation q);

// Union of two relations.
std::shared_ptr<ConflictRelation> MakeUnion(
    std::shared_ptr<const ConflictRelation> a,
    std::shared_ptr<const ConflictRelation> b);

}  // namespace ccr

#endif  // CCR_CORE_CONFLICT_RELATION_H_
