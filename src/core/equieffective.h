// Copyright 2026 The ccr Authors.
//
// "Looks like" and equieffectiveness (paper Section 6.1).
//
//   α looks like β   iff for every operation sequence ρ, αρ ∈ Spec ⇒ βρ ∈ Spec
//   α equieffective β iff each looks like the other.
//
// For an automaton, a sequence matters only through the macro-state (set of
// states) it reaches, so both relations reduce to language containment
// between macro-states. We decide containment by probing with a finite
// operation universe up to a bounded depth; this is exact whenever the
// universe and depth suffice to distinguish any two distinguishable
// macro-states (true for all library ADTs, whose universes include their
// observer operations).

#ifndef CCR_CORE_EQUIEFFECTIVE_H_
#define CCR_CORE_EQUIEFFECTIVE_H_

#include <optional>
#include <vector>

#include "core/spec.h"

namespace ccr {

// Bounds for the containment probe.
struct ProbeOptions {
  int depth = 6;              // maximum length of probe sequences ρ
  size_t max_pairs = 100000;  // cap on explored (A,B) macro-state pairs
};

// Searches for a future ρ (|ρ| <= depth, ops drawn from `universe`) that is
// legal from `a` but not from `b`; nullopt if none is found within bounds.
// The empty future counts: if `a` is nonempty and `b` is empty, ρ = Λ.
std::optional<OpSeq> FindDistinguishingFuture(
    const SpecAutomaton& spec, const StateSet& a, const StateSet& b,
    const std::vector<Operation>& universe, const ProbeOptions& options);

// futures(a) ⊆ futures(b), within the probe bounds.
bool LooksLike(const SpecAutomaton& spec, const StateSet& a,
               const StateSet& b, const std::vector<Operation>& universe,
               const ProbeOptions& options);

// Mutual containment.
bool Equieffective(const SpecAutomaton& spec, const StateSet& a,
                   const StateSet& b, const std::vector<Operation>& universe,
                   const ProbeOptions& options);

// Sequence-level wrappers running both sequences from the initial state.
bool SeqLooksLike(const SpecAutomaton& spec, const OpSeq& alpha,
                  const OpSeq& beta, const std::vector<Operation>& universe,
                  const ProbeOptions& options);
bool SeqEquieffective(const SpecAutomaton& spec, const OpSeq& alpha,
                      const OpSeq& beta,
                      const std::vector<Operation>& universe,
                      const ProbeOptions& options);

}  // namespace ccr

#endif  // CCR_CORE_EQUIEFFECTIVE_H_
