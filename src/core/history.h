// Copyright 2026 The ccr Authors.
//
// Histories — well-formed finite sequences of events (paper Section 2) —
// plus the derived notions of Section 3: Committed/Aborted/Active, the
// projections H|X and H|A, Opseq, permanent(H), Serial(H,T), the precedes
// relation, and the commit order used by deferred-update recovery.

#ifndef CCR_CORE_HISTORY_H_
#define CCR_CORE_HISTORY_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/event.h"

namespace ccr {

// A well-formed sequence of events. Append enforces the paper's
// well-formedness constraints incrementally:
//   * a transaction has at most one pending invocation, and an object emits
//     a response only for a pending invocation directed at it;
//   * a transaction never both commits and aborts (at any objects), commits
//     at most once per object, and aborts at most once per object;
//   * a transaction with a pending invocation cannot commit, and a
//     transaction performs no further invocations after commit or abort.
class History {
 public:
  History() = default;

  // Validates and appends; on error the history is unchanged. The rvalue
  // overload validates before consuming, so on error the argument is
  // intact too.
  Status Append(const Event& event);
  Status Append(Event&& event);

  // Appends without well-formedness validation (the incremental caches are
  // still maintained). Only for events known to be legal in sequence:
  // projections of an already well-formed history, or replaying a sequence
  // a previous validation pass accepted.
  void AppendUnchecked(Event event);

  // Builds a history from a full event sequence, validating well-formedness.
  static StatusOr<History> FromEvents(const std::vector<Event>& events);
  static StatusOr<History> FromEvents(std::vector<Event>&& events);

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const Event& at(size_t i) const { return events_[i]; }

  // Transactions that commit (at any object) in this history.
  std::set<TxnId> Committed() const;
  // Transactions that abort (at any object) in this history.
  std::set<TxnId> Aborted() const;
  // Transactions that appear but neither commit nor abort.
  std::set<TxnId> Active() const;
  // All transactions that appear in some event.
  std::set<TxnId> Transactions() const;

  bool IsCommitted(TxnId txn) const { return committed_.count(txn) > 0; }
  bool IsAborted(TxnId txn) const { return aborted_.count(txn) > 0; }
  bool IsActive(TxnId txn) const {
    return appearing_.count(txn) > 0 && !IsCommitted(txn) && !IsAborted(txn);
  }

  // The pending invocation of `txn`, if any.
  std::optional<Invocation> PendingInvocation(TxnId txn) const;

  // H|X — the subsequence of events involving `object`.
  History RestrictObject(const ObjectId& object) const;
  // H|A for a set of transactions.
  History RestrictTxns(const std::set<TxnId>& txns) const;
  // H|A for one transaction.
  History RestrictTxn(TxnId txn) const;

  // Objects appearing in this history.
  std::set<ObjectId> Objects() const;

  // Opseq(H): operations (invocation/response pairs) in response order.
  // Commit/abort events and pending invocations are dropped.
  OpSeq Opseq() const;

  // Opseq(H|A) — the operations executed by one transaction.
  OpSeq OpseqOfTxn(TxnId txn) const;

  // permanent(H) = H | Committed(H).
  History Permanent() const;

  // Serial(H, T) = H|A1 • ... • H|An with transactions in the order `order`.
  // Transactions appearing in H must all be listed in `order`; extra entries
  // are ignored.
  History Serial(const std::vector<TxnId>& order) const;

  // precedes(H): pairs (A,B) such that some operation invoked by B responds
  // after A's first commit event. A partial order per Lemma 1 of the paper.
  std::vector<std::pair<TxnId, TxnId>> Precedes() const;

  // Commit-order(H): committed transactions ordered by first commit event.
  std::vector<TxnId> CommitOrder() const;

  // True if events of different transactions are not interleaved and no
  // transaction aborts ("serial failure-free" in the paper).
  bool IsSerial() const;
  bool IsFailureFree() const { return aborted_.empty(); }

  // Multi-line rendering, one event per line.
  std::string ToString() const;

 private:
  Status Validate(const Event& event) const;
  void ApplyCaches(const Event& event);

  std::vector<Event> events_;

  // Incremental caches (derivable from events_).
  std::set<TxnId> committed_;
  std::set<TxnId> aborted_;
  std::set<TxnId> appearing_;
  std::map<TxnId, Invocation> pending_;              // one per txn, if any
  std::set<std::pair<TxnId, ObjectId>> commits_at_;  // txn committed at obj
  std::set<std::pair<TxnId, ObjectId>> aborts_at_;   // txn aborted at obj
};

}  // namespace ccr

#endif  // CCR_CORE_HISTORY_H_
