// Copyright 2026 The ccr Authors.
//
// Lock-mode compilation. Real systems do not evaluate a commutativity
// predicate per operation pair at runtime; they classify operations into a
// small set of *lock modes* and consult a compatibility matrix (Korth's
// locking primitives — the paper's reference [9]). This module derives that
// matrix from a conflict relation over a representative operation universe:
//
//   * every operation is classified by its *kind* — operation name plus
//     distinguished non-numeric result (withdraw/ok vs withdraw/no);
//   * two kinds are compatible iff NO pair of universe instantiations
//     conflicts.
//
// The induced table-driven relation is conservative: it conflicts whenever
// some instantiation would (so it contains the exact relation and remains
// sufficient for Theorems 9/10), at the cost of the argument-dependent
// concurrency the exact predicates admit (e.g. [withdraw(5),ok] vs
// [balance,3] never co-occur, which the exact relation exploits and a mode
// table cannot).

#ifndef CCR_CORE_LOCK_MODES_H_
#define CCR_CORE_LOCK_MODES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/conflict_relation.h"

namespace ccr {

// The mode (kind) of an operation: "name" alone, or "name/result" when the
// universe shows several non-numeric results for that name. Numeric results
// (balance values, sizes) parameterize a single mode.
std::string LockModeOf(const Operation& op,
                       const std::vector<Operation>& universe);

// A compiled lock-compatibility matrix.
class LockModeTable {
 public:
  // Compiles the matrix for `relation` over `universe`. `oriented` keeps
  // the (requested, held) orientation (NRBC); when false the matrix is
  // symmetrized by construction.
  static LockModeTable Compile(const ConflictRelation& relation,
                               const std::vector<Operation>& universe,
                               std::string name);

  const std::vector<std::string>& modes() const { return modes_; }
  const std::string& name() const { return name_; }

  // Does requesting `requested_mode` conflict with held `held_mode`?
  // Unknown modes conservatively conflict with everything.
  bool Conflicts(const std::string& requested_mode,
                 const std::string& held_mode) const;

  // The matrix in the classical compatibility layout ('+' compatible,
  // 'x' conflicting).
  std::string ToString() const;

  size_t ConflictingPairs() const;

 private:
  std::string name_;
  std::vector<std::string> modes_;
  std::map<std::string, size_t> index_;
  std::vector<std::vector<bool>> conflicts_;
};

// A ConflictRelation driven by a compiled mode table: classifies each
// operation by mode (against the compile-time universe's naming scheme) and
// consults the matrix. Conservative superset of the compiled relation.
std::shared_ptr<ConflictRelation> MakeTableConflict(
    std::shared_ptr<const LockModeTable> table,
    std::vector<Operation> universe);

}  // namespace ccr

#endif  // CCR_CORE_LOCK_MODES_H_
