// Copyright 2026 The ccr Authors.

#include "core/history.h"

#include <algorithm>

#include "common/string_util.h"

namespace ccr {

Status History::Append(const Event& event) {
  CCR_RETURN_IF_ERROR(Validate(event));
  events_.push_back(event);
  ApplyCaches(events_.back());
  return Status::OK();
}

Status History::Append(Event&& event) {
  CCR_RETURN_IF_ERROR(Validate(event));
  events_.push_back(std::move(event));
  ApplyCaches(events_.back());
  return Status::OK();
}

void History::AppendUnchecked(Event event) {
  events_.push_back(std::move(event));
  ApplyCaches(events_.back());
}

StatusOr<History> History::FromEvents(const std::vector<Event>& events) {
  History h;
  for (const Event& e : events) {
    Status s = h.Append(e);
    if (!s.ok()) return s;
  }
  return h;
}

StatusOr<History> History::FromEvents(std::vector<Event>&& events) {
  History h;
  h.events_.reserve(events.size());
  for (Event& e : events) {
    Status s = h.Append(std::move(e));
    if (!s.ok()) return s;
  }
  return h;
}

Status History::Validate(const Event& event) const {
  const TxnId txn = event.txn();
  if (txn == kInvalidTxn) {
    return Status::InvalidArgument("event with invalid transaction id");
  }
  const bool committed = committed_.count(txn) > 0;
  const bool aborted = aborted_.count(txn) > 0;
  const auto pending_it = pending_.find(txn);
  const bool has_pending = pending_it != pending_.end();

  switch (event.kind()) {
    case EventKind::kInvoke:
      if (committed || aborted) {
        return Status::IllegalState(StrFormat(
            "%s invokes after it %s", TxnName(txn).c_str(),
            committed ? "committed" : "aborted"));
      }
      if (has_pending) {
        return Status::IllegalState(
            StrFormat("%s already has a pending invocation %s",
                      TxnName(txn).c_str(),
                      pending_it->second.ToString().c_str()));
      }
      return Status::OK();
    case EventKind::kResponse:
      if (!has_pending) {
        return Status::IllegalState(StrFormat(
            "response for %s with no pending invocation",
            TxnName(txn).c_str()));
      }
      if (pending_it->second.object() != event.object()) {
        return Status::IllegalState(StrFormat(
            "response at %s but %s's pending invocation is at %s",
            event.object().c_str(), TxnName(txn).c_str(),
            pending_it->second.object().c_str()));
      }
      return Status::OK();
    case EventKind::kCommit:
      if (aborted) {
        return Status::IllegalState(StrFormat(
            "%s commits after aborting", TxnName(txn).c_str()));
      }
      if (has_pending) {
        return Status::IllegalState(StrFormat(
            "%s commits while waiting for a response",
            TxnName(txn).c_str()));
      }
      if (commits_at_.count({txn, event.object()}) > 0) {
        return Status::IllegalState(StrFormat(
            "%s commits twice at %s", TxnName(txn).c_str(),
            event.object().c_str()));
      }
      return Status::OK();
    case EventKind::kAbort:
      if (committed) {
        return Status::IllegalState(StrFormat(
            "%s aborts after committing", TxnName(txn).c_str()));
      }
      if (aborts_at_.count({txn, event.object()}) > 0) {
        return Status::IllegalState(StrFormat(
            "%s aborts twice at %s", TxnName(txn).c_str(),
            event.object().c_str()));
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown event kind");
}

void History::ApplyCaches(const Event& event) {
  const TxnId txn = event.txn();
  appearing_.insert(txn);
  switch (event.kind()) {
    case EventKind::kInvoke:
      pending_.emplace(txn, event.invocation());
      break;
    case EventKind::kResponse:
      pending_.erase(txn);
      break;
    case EventKind::kCommit:
      committed_.insert(txn);
      commits_at_.insert({txn, event.object()});
      break;
    case EventKind::kAbort:
      aborted_.insert(txn);
      aborts_at_.insert({txn, event.object()});
      // A pending invocation of an aborted transaction is abandoned.
      pending_.erase(txn);
      break;
  }
}

std::set<TxnId> History::Committed() const { return committed_; }
std::set<TxnId> History::Aborted() const { return aborted_; }

std::set<TxnId> History::Active() const {
  std::set<TxnId> out;
  for (TxnId t : appearing_) {
    if (committed_.count(t) == 0 && aborted_.count(t) == 0) out.insert(t);
  }
  return out;
}

std::set<TxnId> History::Transactions() const { return appearing_; }

std::optional<Invocation> History::PendingInvocation(TxnId txn) const {
  auto it = pending_.find(txn);
  if (it == pending_.end()) return std::nullopt;
  return it->second;
}

History History::RestrictObject(const ObjectId& object) const {
  // Projections of a well-formed history are well-formed (every constraint
  // is per transaction, per object, or per (transaction, object) pair, and
  // a projection keeps each such group intact), so skip re-validation.
  History out;
  for (const Event& e : events_) {
    if (e.object() == object) out.AppendUnchecked(e);
  }
  return out;
}

History History::RestrictTxns(const std::set<TxnId>& txns) const {
  History out;
  for (const Event& e : events_) {
    if (txns.count(e.txn()) > 0) out.AppendUnchecked(e);
  }
  return out;
}

History History::RestrictTxn(TxnId txn) const {
  return RestrictTxns({txn});
}

std::set<ObjectId> History::Objects() const {
  std::set<ObjectId> out;
  for (const Event& e : events_) out.insert(e.object());
  return out;
}

OpSeq History::Opseq() const {
  OpSeq out;
  std::map<TxnId, Invocation> pending;
  for (const Event& e : events_) {
    if (e.is_invoke()) {
      pending[e.txn()] = e.invocation();
    } else if (e.is_response()) {
      auto it = pending.find(e.txn());
      CCR_CHECK_MSG(it != pending.end(),
                    "response without pending invocation in Opseq");
      out.emplace_back(it->second, e.result());
      pending.erase(it);
    }
  }
  return out;
}

OpSeq History::OpseqOfTxn(TxnId txn) const {
  return RestrictTxn(txn).Opseq();
}

History History::Permanent() const { return RestrictTxns(committed_); }

History History::Serial(const std::vector<TxnId>& order) const {
  std::set<TxnId> seen;
  History out;
  for (TxnId txn : order) {
    CCR_CHECK_MSG(seen.insert(txn).second, "duplicate txn %s in order",
                  TxnName(txn).c_str());
    History part = RestrictTxn(txn);
    for (const Event& e : part.events()) {
      Status s = out.Append(e);
      CCR_CHECK_MSG(s.ok(), "serialization broke well-formedness: %s",
                    s.ToString().c_str());
    }
  }
  // Every transaction in the history must be covered by `order`.
  for (TxnId txn : appearing_) {
    CCR_CHECK_MSG(seen.count(txn) > 0, "txn %s missing from order",
                  TxnName(txn).c_str());
  }
  return out;
}

std::vector<std::pair<TxnId, TxnId>> History::Precedes() const {
  std::set<std::pair<TxnId, TxnId>> pairs;
  std::set<TxnId> committed_so_far;
  for (const Event& e : events_) {
    if (e.is_commit() && committed_so_far.count(e.txn()) == 0) {
      committed_so_far.insert(e.txn());
    } else if (e.is_response()) {
      for (TxnId a : committed_so_far) {
        if (a != e.txn()) pairs.insert({a, e.txn()});
      }
    }
  }
  return {pairs.begin(), pairs.end()};
}

std::vector<TxnId> History::CommitOrder() const {
  std::vector<TxnId> order;
  std::set<TxnId> seen;
  for (const Event& e : events_) {
    if (e.is_commit() && seen.insert(e.txn()).second) {
      order.push_back(e.txn());
    }
  }
  return order;
}

bool History::IsSerial() const {
  // Events of different transactions must not interleave: once we move from
  // transaction A to B, A must never appear again.
  std::set<TxnId> finished;
  TxnId current = kInvalidTxn;
  for (const Event& e : events_) {
    if (e.txn() != current) {
      if (finished.count(e.txn()) > 0) return false;
      if (current != kInvalidTxn) finished.insert(current);
      current = e.txn();
    }
  }
  return true;
}

std::string History::ToString() const {
  std::string out;
  for (const Event& e : events_) {
    out += e.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace ccr
