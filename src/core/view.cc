// Copyright 2026 The ccr Authors.

#include "core/view.h"

namespace ccr {

OpSeq UipView::Compute(const History& h, TxnId txn) const {
  (void)txn;  // UIP's serial state does not depend on the transaction.
  std::set<TxnId> keep;
  const std::set<TxnId> aborted = h.Aborted();
  for (TxnId t : h.Transactions()) {
    if (aborted.count(t) == 0) keep.insert(t);
  }
  return h.RestrictTxns(keep).Opseq();
}

OpSeq DuView::Compute(const History& h, TxnId txn) const {
  const History committed = h.Permanent();
  OpSeq out = committed.Serial(committed.CommitOrder()).Opseq();
  const OpSeq own = h.OpseqOfTxn(txn);
  out.insert(out.end(), own.begin(), own.end());
  return out;
}

std::shared_ptr<const View> MakeUipView() {
  return std::make_shared<UipView>();
}

std::shared_ptr<const View> MakeDuView() { return std::make_shared<DuView>(); }

}  // namespace ccr
