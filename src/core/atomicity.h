// Copyright 2026 The ccr Authors.
//
// Atomicity checkers (paper Section 3). Given a history and the serial
// specifications of its objects:
//
//   * acceptability — a serial failure-free history is acceptable iff
//     Opseq(H|X) ∈ Spec(X) for every object X;
//   * serializability — H is serializable iff some total order T of its
//     transactions makes Serial(H,T) acceptable;
//   * atomicity — H is atomic iff permanent(H) is serializable;
//   * dynamic atomicity — H is dynamic atomic iff permanent(H) is
//     serializable in *every* total order consistent with precedes(H);
//   * online dynamic atomicity — the same for H|CS, for every commit set CS
//     (committed(H) ⊆ CS, CS ∩ aborted(H) = ∅).
//
// The searches are exponential in the number of transactions in the worst
// case; they prune with prefix legality (specification languages are
// prefix-closed) and honor an explored-node cap, reporting `exhausted`.

#ifndef CCR_CORE_ATOMICITY_H_
#define CCR_CORE_ATOMICITY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/history.h"
#include "core/spec.h"

namespace ccr {

// Object name -> serial specification.
using SpecMap = std::map<ObjectId, std::shared_ptr<const SpecAutomaton>>;

// Search bounds.
struct CheckOptions {
  size_t max_nodes = 1u << 20;  // DFS node cap
};

// Is the serial failure-free history acceptable at every object?
bool IsAcceptable(const History& h, const SpecMap& specs);

struct SerializabilityResult {
  bool serializable = false;
  bool exhausted = false;       // node cap hit before a verdict
  std::vector<TxnId> order;     // witness order when serializable
};

// Is `h` (failure-free) serializable? Searches for a witness order.
SerializabilityResult CheckSerializable(const History& h, const SpecMap& specs,
                                        const CheckOptions& options = {});

// Is `h` atomic — permanent(h) serializable?
SerializabilityResult CheckAtomic(const History& h, const SpecMap& specs,
                                  const CheckOptions& options = {});

struct DynamicAtomicityResult {
  bool dynamic_atomic = false;
  bool exhausted = false;
  // When not dynamic atomic: an order consistent with precedes whose serial
  // history is unacceptable.
  std::vector<TxnId> violating_order;
};

// Is `h` dynamic atomic? Searches for a precedes-consistent order of the
// committed transactions whose serialization is unacceptable.
DynamicAtomicityResult CheckDynamicAtomic(const History& h,
                                          const SpecMap& specs,
                                          const CheckOptions& options = {});

// Online dynamic atomicity over all commit sets (exponential in |Active|).
DynamicAtomicityResult CheckOnlineDynamicAtomic(
    const History& h, const SpecMap& specs, const CheckOptions& options = {});

}  // namespace ccr

#endif  // CCR_CORE_ATOMICITY_H_
