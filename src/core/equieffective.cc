// Copyright 2026 The ccr Authors.

#include "core/equieffective.h"

#include <deque>
#include <unordered_map>

namespace ccr {

namespace {

// A BFS node: a pair of macro-states and the probe path that reached it.
struct Node {
  StateSet a;
  StateSet b;
  OpSeq path;
};

}  // namespace

std::optional<OpSeq> FindDistinguishingFuture(
    const SpecAutomaton& spec, const StateSet& a, const StateSet& b,
    const std::vector<Operation>& universe, const ProbeOptions& options) {
  if (a.empty()) return std::nullopt;  // no futures at all
  if (b.empty()) return OpSeq{};       // ρ = Λ distinguishes

  std::deque<Node> queue;
  queue.push_back(Node{a, b, {}});

  // Visited pairs, bucketed by combined hash with exact equality check.
  std::unordered_map<size_t, std::vector<std::pair<StateSet, StateSet>>>
      visited;
  auto mark_visited = [&visited](const StateSet& x, const StateSet& y) {
    const size_t h = x.Hash() * 31 ^ y.Hash();
    auto& bucket = visited[h];
    for (const auto& [vx, vy] : bucket) {
      if (vx.Equals(x) && vy.Equals(y)) return false;
    }
    bucket.emplace_back(x, y);
    return true;
  };
  mark_visited(a, b);

  size_t explored = 0;
  while (!queue.empty()) {
    Node node = std::move(queue.front());
    queue.pop_front();
    if (static_cast<int>(node.path.size()) >= options.depth) continue;
    if (++explored > options.max_pairs) break;

    for (const Operation& op : universe) {
      StateSet next_a = node.a.Step(spec, op);
      if (next_a.empty()) continue;  // op not a legal future from a
      StateSet next_b = node.b.Step(spec, op);
      OpSeq next_path = node.path;
      next_path.push_back(op);
      if (next_b.empty()) return next_path;  // legal from a, not from b
      // If the macro-states coincide, every deeper future behaves the same.
      if (spec.reduced() && next_a.Equals(next_b)) continue;
      if (mark_visited(next_a, next_b)) {
        queue.push_back(Node{std::move(next_a), std::move(next_b),
                             std::move(next_path)});
      }
    }
  }
  return std::nullopt;
}

bool LooksLike(const SpecAutomaton& spec, const StateSet& a,
               const StateSet& b, const std::vector<Operation>& universe,
               const ProbeOptions& options) {
  if (spec.reduced() && a.Equals(b)) return true;
  return !FindDistinguishingFuture(spec, a, b, universe, options).has_value();
}

bool Equieffective(const SpecAutomaton& spec, const StateSet& a,
                   const StateSet& b, const std::vector<Operation>& universe,
                   const ProbeOptions& options) {
  if (spec.reduced() && a.Equals(b)) return true;
  return LooksLike(spec, a, b, universe, options) &&
         LooksLike(spec, b, a, universe, options);
}

bool SeqLooksLike(const SpecAutomaton& spec, const OpSeq& alpha,
                  const OpSeq& beta, const std::vector<Operation>& universe,
                  const ProbeOptions& options) {
  return LooksLike(spec, RunSpec(spec, alpha), RunSpec(spec, beta), universe,
                   options);
}

bool SeqEquieffective(const SpecAutomaton& spec, const OpSeq& alpha,
                      const OpSeq& beta,
                      const std::vector<Operation>& universe,
                      const ProbeOptions& options) {
  return Equieffective(spec, RunSpec(spec, alpha), RunSpec(spec, beta),
                       universe, options);
}

}  // namespace ccr
