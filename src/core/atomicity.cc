// Copyright 2026 The ccr Authors.

#include "core/atomicity.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "common/macros.h"

namespace ccr {

namespace {

// Per-transaction, per-object operation sequences of a history.
using TxnOps = std::map<TxnId, std::map<ObjectId, OpSeq>>;

TxnOps SplitOps(const History& h) {
  TxnOps out;
  std::map<TxnId, Invocation> pending;
  for (const Event& e : h.events()) {
    if (e.is_invoke()) {
      pending[e.txn()] = e.invocation();
    } else if (e.is_response()) {
      auto it = pending.find(e.txn());
      CCR_CHECK(it != pending.end());
      out[e.txn()][e.object()].emplace_back(it->second, e.result());
      pending.erase(it);
    }
  }
  return out;
}

// The evolving per-object macro-states along a serial order.
struct ObjectStates {
  std::map<ObjectId, StateSet> states;

  static ObjectStates Initial(const SpecMap& specs,
                              const std::set<ObjectId>& objects) {
    ObjectStates out;
    for (const ObjectId& obj : objects) {
      auto it = specs.find(obj);
      CCR_CHECK_MSG(it != specs.end(), "no spec for object %s", obj.c_str());
      out.states.emplace(obj,
                         StateSet::Singleton(it->second->InitialState()));
    }
    return out;
  }

  // Steps all of `txn`'s operations; false if some object's language dies
  // (the serial prefix is unacceptable).
  bool StepTxn(const SpecMap& specs, const TxnOps& ops, TxnId txn) {
    auto txn_it = ops.find(txn);
    if (txn_it == ops.end()) return true;  // txn executed no operations
    for (const auto& [obj, seq] : txn_it->second) {
      auto spec_it = specs.find(obj);
      CCR_CHECK(spec_it != specs.end());
      StateSet& set = states.at(obj);
      set = set.StepSeq(*spec_it->second, seq);
      if (set.empty()) return false;
    }
    return true;
  }
};

// Predecessor sets of the precedes relation, restricted to `txns`.
std::map<TxnId, std::set<TxnId>> PredecessorMap(
    const std::vector<std::pair<TxnId, TxnId>>& precedes,
    const std::set<TxnId>& txns) {
  std::map<TxnId, std::set<TxnId>> preds;
  for (TxnId t : txns) preds[t];
  for (const auto& [a, b] : precedes) {
    if (txns.count(a) > 0 && txns.count(b) > 0) preds[b].insert(a);
  }
  return preds;
}

// DFS looking for a *witness* serial order (serializability).
struct SerializeSearch {
  const SpecMap& specs;
  const TxnOps& ops;
  std::vector<TxnId> all;
  size_t max_nodes;
  size_t nodes = 0;
  bool exhausted = false;
  std::vector<TxnId> order;

  bool Dfs(ObjectStates states, std::vector<bool>& used, size_t placed) {
    if (placed == all.size()) return true;
    if (++nodes > max_nodes) {
      exhausted = true;
      return false;
    }
    for (size_t i = 0; i < all.size(); ++i) {
      if (used[i]) continue;
      ObjectStates next = states;
      if (!next.StepTxn(specs, ops, all[i])) continue;  // prune
      used[i] = true;
      order.push_back(all[i]);
      if (Dfs(std::move(next), used, placed + 1)) return true;
      order.pop_back();
      used[i] = false;
      if (exhausted) return false;
    }
    return false;
  }
};

// DFS looking for a *violating* precedes-consistent order: a prefix that is
// order-consistent and already unacceptable. Any such prefix extends to a
// full linear extension, so it witnesses non-(dynamic-)atomicity.
//
// Visited (placed-set, states) configurations are memoized: two different
// orders of the same transaction set that reach the same object states have
// identical futures. Under a correct conflict relation concurrent
// transactions' effects commute, so the states typically coincide and the
// search degenerates from all-linear-extensions to near-linear in history
// length.
struct ViolationSearch {
  const SpecMap& specs;
  const TxnOps& ops;
  std::vector<TxnId> all;
  std::map<TxnId, std::set<TxnId>> preds;
  size_t max_nodes;
  size_t nodes = 0;
  bool exhausted = false;
  std::vector<TxnId> order;
  std::set<TxnId> placed;
  // hash -> (placed set, per-object states) configurations already explored.
  std::unordered_map<size_t,
                     std::vector<std::pair<std::set<TxnId>,
                                           std::map<ObjectId, StateSet>>>>
      visited;

  bool MarkVisited(const ObjectStates& states) {
    size_t h = placed.size();
    for (TxnId t : placed) h = h * 1000003 + static_cast<size_t>(t);
    for (const auto& [obj, set] : states.states) {
      h ^= std::hash<std::string>()(obj) * 31 + set.Hash();
    }
    auto& bucket = visited[h];
    for (const auto& [vp, vs] : bucket) {
      if (vp != placed) continue;
      bool same = true;
      for (const auto& [obj, set] : states.states) {
        auto it = vs.find(obj);
        if (it == vs.end() || !it->second.Equals(set)) {
          same = false;
          break;
        }
      }
      if (same) return false;  // already explored
    }
    bucket.emplace_back(placed, states.states);
    return true;
  }

  bool Available(TxnId t) const {
    for (TxnId p : preds.at(t)) {
      if (placed.count(p) == 0) return false;
    }
    return true;
  }

  // Completes `order` to a full linear extension (used once a violating
  // prefix is found).
  void CompleteOrder() {
    while (placed.size() < all.size()) {
      for (TxnId t : all) {
        if (placed.count(t) == 0 && Available(t)) {
          order.push_back(t);
          placed.insert(t);
          break;
        }
      }
    }
  }

  bool Dfs(ObjectStates states) {
    if (placed.size() == all.size()) return false;
    if (++nodes > max_nodes) {
      exhausted = true;
      return false;
    }
    for (TxnId t : all) {
      if (placed.count(t) > 0 || !Available(t)) continue;
      ObjectStates next = states;
      order.push_back(t);
      placed.insert(t);
      if (!next.StepTxn(specs, ops, t)) {
        // Unacceptable prefix consistent with precedes: violation found.
        CompleteOrder();
        return true;
      }
      if (MarkVisited(next) && Dfs(std::move(next))) return true;
      placed.erase(t);
      order.pop_back();
      if (exhausted) return false;
    }
    return false;
  }
};

}  // namespace

bool IsAcceptable(const History& h, const SpecMap& specs) {
  for (const ObjectId& obj : h.Objects()) {
    auto it = specs.find(obj);
    CCR_CHECK_MSG(it != specs.end(), "no spec for object %s", obj.c_str());
    if (!Legal(*it->second, h.RestrictObject(obj).Opseq())) return false;
  }
  return true;
}

SerializabilityResult CheckSerializable(const History& h, const SpecMap& specs,
                                        const CheckOptions& options) {
  const TxnOps ops = SplitOps(h);
  const std::set<TxnId> txns = h.Transactions();
  SerializeSearch search{specs,
                         ops,
                         std::vector<TxnId>(txns.begin(), txns.end()),
                         options.max_nodes,
                         /*nodes=*/0,
                         /*exhausted=*/false,
                         /*order=*/{}};
  std::vector<bool> used(search.all.size(), false);
  ObjectStates init = ObjectStates::Initial(specs, h.Objects());
  SerializabilityResult result;
  result.serializable = search.Dfs(std::move(init), used, 0);
  result.exhausted = search.exhausted;
  if (result.serializable) result.order = search.order;
  return result;
}

SerializabilityResult CheckAtomic(const History& h, const SpecMap& specs,
                                  const CheckOptions& options) {
  return CheckSerializable(h.Permanent(), specs, options);
}

namespace {

// Shared body: is `k` serializable in every order (over its transactions)
// consistent with `precedes`?
DynamicAtomicityResult CheckAllOrders(
    const History& k, const std::vector<std::pair<TxnId, TxnId>>& precedes,
    const SpecMap& specs, const CheckOptions& options) {
  const TxnOps ops = SplitOps(k);
  const std::set<TxnId> txns = k.Transactions();
  ViolationSearch search{specs,
                         ops,
                         std::vector<TxnId>(txns.begin(), txns.end()),
                         PredecessorMap(precedes, txns),
                         options.max_nodes,
                         /*nodes=*/0,
                         /*exhausted=*/false,
                         /*order=*/{},
                         /*placed=*/{},
                         /*visited=*/{}};
  ObjectStates init = ObjectStates::Initial(specs, k.Objects());
  DynamicAtomicityResult result;
  const bool violated = search.Dfs(std::move(init));
  result.exhausted = search.exhausted;
  result.dynamic_atomic = !violated && !search.exhausted;
  if (violated) result.violating_order = search.order;
  return result;
}

}  // namespace

DynamicAtomicityResult CheckDynamicAtomic(const History& h,
                                          const SpecMap& specs,
                                          const CheckOptions& options) {
  return CheckAllOrders(h.Permanent(), h.Precedes(), specs, options);
}

DynamicAtomicityResult CheckOnlineDynamicAtomic(const History& h,
                                                const SpecMap& specs,
                                                const CheckOptions& options) {
  const std::set<TxnId> committed = h.Committed();
  const std::set<TxnId> active = h.Active();
  const std::vector<TxnId> active_vec(active.begin(), active.end());
  CCR_CHECK_MSG(active_vec.size() <= 20, "too many active txns (%zu)",
                active_vec.size());
  DynamicAtomicityResult result;
  result.dynamic_atomic = true;
  for (uint64_t mask = 0; mask < (1ull << active_vec.size()); ++mask) {
    std::set<TxnId> cs = committed;
    for (size_t i = 0; i < active_vec.size(); ++i) {
      if (mask & (1ull << i)) cs.insert(active_vec[i]);
    }
    const History k = h.RestrictTxns(cs);
    DynamicAtomicityResult sub =
        CheckAllOrders(k, k.Precedes(), specs, options);
    result.exhausted = result.exhausted || sub.exhausted;
    if (!sub.dynamic_atomic && !sub.exhausted) {
      result.dynamic_atomic = false;
      result.violating_order = sub.violating_order;
      return result;
    }
  }
  result.dynamic_atomic = !result.exhausted;
  return result;
}

}  // namespace ccr
