// Copyright 2026 The ccr Authors.
//
// Textual serialization of histories, so recorded executions can be stored,
// shipped, and audited offline (see examples/history_audit). One event per
// line, whitespace-separated:
//
//   invoke   <txn> <object> <code> <name> [args...]
//   response <txn> <object> <result>
//   commit   <txn> <object>
//   abort    <txn> <object>
//
// Values are typed literals: i:42, s:ok, b:true, u: (unit). Object and
// operation names must not contain whitespace. Lines starting with '#' and
// blank lines are ignored.

#ifndef CCR_CORE_HISTORY_IO_H_
#define CCR_CORE_HISTORY_IO_H_

#include <string>

#include "common/status.h"
#include "core/history.h"

namespace ccr {

// Serializes a history (one event per line, trailing newline).
std::string SerializeHistory(const History& history);

// Parses the serialization format. Validates well-formedness (the result
// is a real History). Errors carry the offending line number.
StatusOr<History> ParseHistory(const std::string& text);

// Typed-literal encoding of one value (i:/s:/b:/u:).
std::string SerializeValue(const Value& value);
StatusOr<Value> ParseValue(const std::string& token);

}  // namespace ccr

#endif  // CCR_CORE_HISTORY_IO_H_
