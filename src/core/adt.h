// Copyright 2026 The ccr Authors.
//
// The abstract-data-type interface. An Adt bundles a serial specification
// with everything the framework needs around it: a representative finite
// operation universe for analysis, closed-form commutativity predicates
// (exact for all argument values — the generalization of the paper's
// Figures 6-1/6-2), a read/write classification for the classical locking
// baseline, and optional inverse operations for undo-based UIP recovery.

#ifndef CCR_CORE_ADT_H_
#define CCR_CORE_ADT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/spec.h"

namespace ccr {

class Adt {
 public:
  virtual ~Adt() = default;

  virtual std::string name() const = 0;
  virtual const SpecAutomaton& spec() const = 0;

  // A finite set of representative operations, used by the commutativity
  // analyzer and the figure benches. Must include the ADT's observers so
  // bounded looks-like probing can distinguish distinguishable states.
  virtual std::vector<Operation> Universe() const = 0;

  // Closed-form forward commutativity: FC(p, q). Symmetric.
  virtual bool CommuteForward(const Operation& p,
                              const Operation& q) const = 0;

  // Closed-form right backward commutativity: p right-commutes-backward
  // with q. Not symmetric in general.
  virtual bool RightCommutesBackward(const Operation& p,
                                     const Operation& q) const = 0;

  // True if the operation modifies the abstract state — the classification
  // classical read/write locking uses.
  virtual bool IsUpdate(const Operation& op) const = 0;

  // Inverse-operation undo: the state obtained by undoing `op` from `state`,
  // or nullopt if this ADT does not support inverses (then UIP recovery must
  // use replay). Only meaningful when `op` was the most recent *effect* of
  // its transaction at this state modulo commutativity — see UipRecovery.
  virtual std::optional<std::unique_ptr<SpecState>> InverseApply(
      const SpecState& state, const Operation& op) const {
    (void)state;
    (void)op;
    return std::nullopt;
  }

  virtual bool supports_inverse() const { return false; }
};

}  // namespace ccr

#endif  // CCR_CORE_ADT_H_
