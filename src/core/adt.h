// Copyright 2026 The ccr Authors.
//
// The abstract-data-type interface. An Adt bundles a serial specification
// with everything the framework needs around it: a representative finite
// operation universe for analysis, closed-form commutativity predicates
// (exact for all argument values — the generalization of the paper's
// Figures 6-1/6-2), a read/write classification for the classical locking
// baseline, and optional inverse operations for undo-based UIP recovery.

#ifndef CCR_CORE_ADT_H_
#define CCR_CORE_ADT_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/spec.h"

namespace ccr {

class Adt {
 public:
  virtual ~Adt() = default;

  virtual std::string name() const = 0;
  virtual const SpecAutomaton& spec() const = 0;

  // A finite set of representative operations, used by the commutativity
  // analyzer and the figure benches. Must include the ADT's observers so
  // bounded looks-like probing can distinguish distinguishable states.
  virtual std::vector<Operation> Universe() const = 0;

  // Closed-form forward commutativity: FC(p, q). Symmetric.
  virtual bool CommuteForward(const Operation& p,
                              const Operation& q) const = 0;

  // Closed-form right backward commutativity: p right-commutes-backward
  // with q. Not symmetric in general.
  virtual bool RightCommutesBackward(const Operation& p,
                                     const Operation& q) const = 0;

  // True if the operation modifies the abstract state — the classification
  // classical read/write locking uses.
  virtual bool IsUpdate(const Operation& op) const = 0;

  // Inverse-operation undo: the state obtained by undoing `op` from `state`,
  // or nullopt if this ADT does not support inverses (then UIP recovery must
  // use replay). Only meaningful when `op` was the most recent *effect* of
  // its transaction at this state modulo commutativity — see UipRecovery.
  virtual std::optional<std::unique_ptr<SpecState>> InverseApply(
      const SpecState& state, const Operation& op) const {
    (void)state;
    (void)op;
    return std::nullopt;
  }

  virtual bool supports_inverse() const { return false; }

  // Checkpoint state codec: a newline-free byte encoding of an abstract
  // state and its inverse, so a committed state can be written into (and
  // reloaded from) a durable checkpoint image (txn/checkpoint.h). The
  // encoding must round-trip exactly: Decode(Encode(s)) equals s. ADTs
  // that implement both report supports_state_codec() true; objects whose
  // ADT does not cannot participate in checkpoints and keep full-journal
  // replay.
  virtual bool supports_state_codec() const { return false; }

  // Only called when supports_state_codec(); the default is a placeholder.
  virtual std::string EncodeState(const SpecState& state) const {
    return state.ToString();
  }

  virtual StatusOr<std::unique_ptr<SpecState>> DecodeState(
      std::string_view encoded) const {
    (void)encoded;
    return Status::Internal("ADT " + name() + " has no state codec");
  }
};

}  // namespace ccr

#endif  // CCR_CORE_ADT_H_
