// Copyright 2026 The ccr Authors.

#include "core/conflict_relation.h"

namespace ccr {

std::shared_ptr<ConflictRelation> MakeNfcConflict(
    std::shared_ptr<const Adt> adt) {
  return std::make_shared<FunctionConflict>(
      "NFC(" + adt->name() + ")",
      [adt](const Operation& requested, const Operation& held) {
        return !adt->CommuteForward(requested, held);
      });
}

std::shared_ptr<ConflictRelation> MakeNrbcConflict(
    std::shared_ptr<const Adt> adt) {
  return std::make_shared<FunctionConflict>(
      "NRBC(" + adt->name() + ")",
      [adt](const Operation& requested, const Operation& held) {
        return !adt->RightCommutesBackward(requested, held);
      });
}

std::shared_ptr<ConflictRelation> MakeSymmetricNrbcConflict(
    std::shared_ptr<const Adt> adt) {
  return std::make_shared<FunctionConflict>(
      "symNRBC(" + adt->name() + ")",
      [adt](const Operation& requested, const Operation& held) {
        return !adt->RightCommutesBackward(requested, held) ||
               !adt->RightCommutesBackward(held, requested);
      });
}

std::shared_ptr<ConflictRelation> MakeReadWriteConflict(
    std::shared_ptr<const Adt> adt) {
  return std::make_shared<FunctionConflict>(
      "RW(" + adt->name() + ")",
      [adt](const Operation& requested, const Operation& held) {
        return adt->IsUpdate(requested) || adt->IsUpdate(held);
      });
}

std::shared_ptr<ConflictRelation> MakeEmptyConflict() {
  return std::make_shared<FunctionConflict>(
      "empty", [](const Operation&, const Operation&) { return false; });
}

std::shared_ptr<ConflictRelation> MakeTotalConflict() {
  return std::make_shared<FunctionConflict>(
      "total", [](const Operation&, const Operation&) { return true; });
}

std::shared_ptr<ConflictRelation> MakeSymmetricClosure(
    std::shared_ptr<const ConflictRelation> inner) {
  return std::make_shared<FunctionConflict>(
      "sym(" + inner->name() + ")",
      [inner](const Operation& requested, const Operation& held) {
        return inner->Conflicts(requested, held) ||
               inner->Conflicts(held, requested);
      });
}

std::shared_ptr<ConflictRelation> MakeExceptPair(
    std::shared_ptr<const ConflictRelation> inner, Operation p, Operation q) {
  const std::string name =
      inner->name() + " \\ (" + p.ToString() + ", " + q.ToString() + ")";
  return std::make_shared<FunctionConflict>(
      name, [inner, p = std::move(p), q = std::move(q)](
                const Operation& requested, const Operation& held) {
        if (requested == p && held == q) return false;
        return inner->Conflicts(requested, held);
      });
}

std::shared_ptr<ConflictRelation> MakeUnion(
    std::shared_ptr<const ConflictRelation> a,
    std::shared_ptr<const ConflictRelation> b) {
  return std::make_shared<FunctionConflict>(
      a->name() + " ∪ " + b->name(),
      [a, b](const Operation& requested, const Operation& held) {
        return a->Conflicts(requested, held) || b->Conflicts(requested, held);
      });
}

}  // namespace ccr
