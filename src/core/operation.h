// Copyright 2026 The ccr Authors.
//
// Invocation and Operation: the paper's basic vocabulary. An invocation is
// an operation name plus arguments directed at an object; an operation is an
// invocation paired with the response it received — written X:[I,R] in the
// paper. Conflict relations and serial specifications are defined over
// operations (so a lock may depend on an operation's *result*, e.g.
// withdraw/OK vs withdraw/NO).

#ifndef CCR_CORE_OPERATION_H_
#define CCR_CORE_OPERATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/value.h"

namespace ccr {

// Objects are named by strings in the formal model; the runtime engine keeps
// object pointers and uses the name only for history recording.
using ObjectId = std::string;

// An operation name + argument list directed at an object. `code` is an
// ADT-local small integer for the operation name, assigned by the ADT, so
// closed-form conflict predicates can switch() instead of comparing strings.
class Invocation {
 public:
  Invocation() : code_(-1) {}
  Invocation(ObjectId object, int code, std::string name,
             std::vector<Value> args)
      : object_(std::move(object)),
        code_(code),
        name_(std::move(name)),
        args_(std::move(args)) {}

  const ObjectId& object() const { return object_; }
  int code() const { return code_; }
  const std::string& name() const { return name_; }
  const std::vector<Value>& args() const { return args_; }

  // Argument accessor with bounds check.
  const Value& arg(size_t i) const;

  bool operator==(const Invocation& other) const;
  bool operator!=(const Invocation& other) const { return !(*this == other); }

  size_t Hash() const;

  // "withdraw(3)" — object not included.
  std::string ToString() const;

 private:
  ObjectId object_;
  int code_;
  std::string name_;
  std::vector<Value> args_;
};

// An invocation together with its response: the paper's X:[I,R].
class Operation {
 public:
  Operation() = default;
  Operation(Invocation inv, Value result)
      : inv_(std::move(inv)), result_(std::move(result)) {}

  const Invocation& inv() const { return inv_; }
  const Value& result() const { return result_; }
  const ObjectId& object() const { return inv_.object(); }
  int code() const { return inv_.code(); }
  const std::string& name() const { return inv_.name(); }
  const std::vector<Value>& args() const { return inv_.args(); }

  bool operator==(const Operation& other) const;
  bool operator!=(const Operation& other) const { return !(*this == other); }

  size_t Hash() const;

  // "BA:[withdraw(3),ok]" in the paper's notation.
  std::string ToString() const;

 private:
  Invocation inv_;
  Value result_;
};

// An operation sequence — the element type of serial specifications.
using OpSeq = std::vector<Operation>;

// Renders "op1 . op2 . ..." ("Λ" for the empty sequence).
std::string OpSeqToString(const OpSeq& seq);

struct OperationHash {
  size_t operator()(const Operation& op) const { return op.Hash(); }
};

struct InvocationHash {
  size_t operator()(const Invocation& inv) const { return inv.Hash(); }
};

}  // namespace ccr

#endif  // CCR_CORE_OPERATION_H_
