// Copyright 2026 The ccr Authors.
//
// Serial specifications (paper Section 3.2) modeled as I/O automata whose
// actions are operations, exactly like the paper's M(BA). A specification is
// the prefix-closed language of the automaton. Automata may be
// nondeterministic (several next states for one operation) and partial (an
// invocation may be disabled, or only some results enabled, in a state).
//
// The generic machinery (membership, equieffectiveness, commutativity)
// manipulates *sets* of states — the subset construction — so sequences map
// to macro-states even for nondeterministic specifications.

#ifndef CCR_CORE_SPEC_H_
#define CCR_CORE_SPEC_H_

#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "core/operation.h"

namespace ccr {

// Type-erased automaton state. Concrete ADTs use TypedState<S> below.
class SpecState {
 public:
  virtual ~SpecState() = default;

  virtual std::unique_ptr<SpecState> Clone() const = 0;
  virtual bool Equals(const SpecState& other) const = 0;
  virtual size_t Hash() const = 0;
  virtual std::string ToString() const = 0;
};

// One enabled outcome of an invocation: the result returned and the state
// reached.
struct Outcome {
  Value result;
  std::unique_ptr<SpecState> next;
};

// A serial specification. `Outcomes` defines the transition relation; the
// language of the automaton (all operation sequences with a run) is the
// specification in the paper's sense.
class SpecAutomaton {
 public:
  virtual ~SpecAutomaton() = default;

  virtual std::string name() const = 0;
  virtual std::unique_ptr<SpecState> InitialState() const = 0;

  // All (result, next-state) pairs enabled for `inv` in `state`. Empty when
  // the invocation is disabled (partial operations).
  virtual std::vector<Outcome> Outcomes(const SpecState& state,
                                        const Invocation& inv) const = 0;

  // Next states for the full operation `op` — Outcomes filtered by result.
  std::vector<std::unique_ptr<SpecState>> Next(const SpecState& state,
                                               const Operation& op) const;

  // True if for every state and operation there is at most one next state.
  // Deterministic ADTs (all of ours except the nondeterministic choice
  // object) may override to enable fast paths in analysis.
  virtual bool deterministic() const { return true; }

  // True if distinct states are distinguishable by some operation sequence —
  // "reduced" automata, for which state-set equality implies
  // equieffectiveness. All library ADTs are reduced.
  virtual bool reduced() const { return true; }
};

// A deduplicated set of states — a macro-state of the subset construction.
// Small by construction (singletons for deterministic specs), so membership
// is a linear scan with hash prefilter.
class StateSet {
 public:
  StateSet() = default;
  StateSet(const StateSet& other);
  StateSet& operator=(const StateSet& other);
  StateSet(StateSet&&) = default;
  StateSet& operator=(StateSet&&) = default;

  // Builds the singleton {state}.
  static StateSet Singleton(std::unique_ptr<SpecState> state);

  // Inserts a state if not already present. Returns true if inserted.
  bool Insert(std::unique_ptr<SpecState> state);

  bool empty() const { return states_.empty(); }
  size_t size() const { return states_.size(); }
  const SpecState& at(size_t i) const { return *states_[i]; }

  bool Contains(const SpecState& state) const;

  // Set equality (order-insensitive).
  bool Equals(const StateSet& other) const;

  // Order-insensitive hash.
  size_t Hash() const;

  // The macro-step: union of Next(s, op) over all members.
  StateSet Step(const SpecAutomaton& spec, const Operation& op) const;

  // Macro-step over a whole sequence.
  StateSet StepSeq(const SpecAutomaton& spec, const OpSeq& seq) const;

  // All (result, next-state-set grouped by result) outcomes of `inv` from
  // this macro-state: the results some member state enables.
  std::vector<Value> EnabledResults(const SpecAutomaton& spec,
                                    const Invocation& inv) const;

  std::string ToString() const;

 private:
  std::vector<std::unique_ptr<SpecState>> states_;
};

// Runs `seq` from the initial state: the macro-state reached (empty iff the
// sequence is not in the specification).
StateSet RunSpec(const SpecAutomaton& spec, const OpSeq& seq);

// Membership in the specification's language: Legal(seq) iff seq ∈ Spec.
bool Legal(const SpecAutomaton& spec, const OpSeq& seq);

// ---------------------------------------------------------------------------
// Typed helpers: ADTs define a value-type state S with
//   bool operator==(const S&) const; size_t Hash() const;
//   std::string ToString() const;
// and derive from TypedSpecAutomaton<S>.
// ---------------------------------------------------------------------------

template <typename S>
class TypedState final : public SpecState {
 public:
  explicit TypedState(S value) : value_(std::move(value)) {}

  const S& value() const { return value_; }

  std::unique_ptr<SpecState> Clone() const override {
    return std::make_unique<TypedState<S>>(value_);
  }
  bool Equals(const SpecState& other) const override {
    const auto* o = dynamic_cast<const TypedState<S>*>(&other);
    return o != nullptr && value_ == o->value_;
  }
  size_t Hash() const override { return value_.Hash(); }
  std::string ToString() const override { return value_.ToString(); }

 private:
  S value_;
};

template <typename S>
class TypedSpecAutomaton : public SpecAutomaton {
 public:
  // Typed transition function supplied by the ADT.
  virtual S Initial() const = 0;
  virtual std::vector<std::pair<Value, S>> TypedOutcomes(
      const S& state, const Invocation& inv) const = 0;

  std::unique_ptr<SpecState> InitialState() const final {
    return std::make_unique<TypedState<S>>(Initial());
  }

  std::vector<Outcome> Outcomes(const SpecState& state,
                                const Invocation& inv) const final {
    const S& s = Unwrap(state);
    std::vector<Outcome> out;
    for (auto& [result, next] : TypedOutcomes(s, inv)) {
      out.push_back(Outcome{
          result, std::make_unique<TypedState<S>>(std::move(next))});
    }
    return out;
  }

  // Extracts the typed state; checked fatal error on foreign states.
  static const S& Unwrap(const SpecState& state) {
    const auto* typed = dynamic_cast<const TypedState<S>*>(&state);
    CCR_CHECK_MSG(typed != nullptr, "state of wrong type: %s",
                  state.ToString().c_str());
    return typed->value();
  }
};

// Convenience state wrapper for ADTs whose abstract state is one integer
// (counter, bank account).
struct Int64State {
  int64_t v = 0;

  bool operator==(const Int64State& other) const { return v == other.v; }
  size_t Hash() const { return std::hash<int64_t>()(v); }
  std::string ToString() const;
};

}  // namespace ccr

#endif  // CCR_CORE_SPEC_H_
