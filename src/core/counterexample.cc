// Copyright 2026 The ccr Authors.

#include "core/counterexample.h"

#include "core/script.h"

namespace ccr {

StatusOr<History> BuildTheorem9History(const ObjectId& x, const Operation& p,
                                       const Operation& q,
                                       const RbcViolation& witness) {
  HistoryScript script;
  script.ExecSeq(kTxnA, witness.alpha).Commit(kTxnA, x);
  script.Exec(kTxnB, q);
  script.Exec(kTxnC, p);
  script.Commit(kTxnB, x).Commit(kTxnC, x);
  if (!witness.rho.empty()) {
    script.ExecSeq(kTxnD, witness.rho).Commit(kTxnD, x);
  }
  return script.Build();
}

StatusOr<History> BuildTheorem10History(const ObjectId& x, const Operation& p,
                                        const Operation& q,
                                        const FcViolation& witness) {
  // Arrange so that the committed order of the two middle transactions is
  // the *legal* composition under DU: if the witness says ρ is legal after
  // p·q (or, in case 1, that p·q is the illegal side but no D runs), B
  // executes p first; otherwise B executes q first.
  const Operation& first = witness.rho_after_pq || witness.pq_illegal ? p : q;
  const Operation& second = witness.rho_after_pq || witness.pq_illegal ? q : p;

  HistoryScript script;
  script.ExecSeq(kTxnA, witness.alpha).Commit(kTxnA, x);
  script.Exec(kTxnB, first);
  script.Exec(kTxnC, second);
  script.Commit(kTxnB, x).Commit(kTxnC, x);
  if (!witness.pq_illegal && !witness.rho.empty()) {
    script.ExecSeq(kTxnD, witness.rho).Commit(kTxnD, x);
  }
  return script.Build();
}

}  // namespace ccr
