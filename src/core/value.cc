// Copyright 2026 The ccr Authors.

#include "core/value.h"

#include <functional>

#include "common/macros.h"
#include "common/string_util.h"

namespace ccr {

int64_t Value::AsInt() const {
  CCR_CHECK_MSG(is_int(), "Value is not an int: %s", ToString().c_str());
  return std::get<int64_t>(rep_);
}

bool Value::AsBool() const {
  CCR_CHECK_MSG(is_bool(), "Value is not a bool: %s", ToString().c_str());
  return std::get<bool>(rep_);
}

const std::string& Value::AsString() const {
  CCR_CHECK_MSG(is_string(), "Value is not a string: %s", ToString().c_str());
  return std::get<std::string>(rep_);
}

size_t Value::Hash() const {
  const size_t tag = rep_.index();
  size_t h = 0;
  switch (tag) {
    case 0:
      h = 0;
      break;
    case 1:
      h = std::hash<int64_t>()(std::get<int64_t>(rep_));
      break;
    case 2:
      h = std::hash<bool>()(std::get<bool>(rep_));
      break;
    case 3:
      h = std::hash<std::string>()(std::get<std::string>(rep_));
      break;
  }
  return h * 4u + tag;
}

std::string Value::ToString() const {
  if (is_unit()) return "()";
  if (is_int()) return StrFormat("%lld", static_cast<long long>(AsInt()));
  if (is_bool()) return AsBool() ? "true" : "false";
  return AsString();
}

size_t HashValues(const std::vector<Value>& values) {
  size_t h = 0x9e3779b97f4a7c15ull;
  for (const Value& v : values) {
    h ^= v.Hash() + 0x9e3779b9u + (h << 6) + (h >> 2);
  }
  return h;
}

std::string ValuesToString(const std::vector<Value>& values) {
  std::vector<std::string> parts;
  parts.reserve(values.size());
  for (const Value& v : values) parts.push_back(v.ToString());
  return StrJoin(parts, ",");
}

}  // namespace ccr
