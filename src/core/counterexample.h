// Copyright 2026 The ccr Authors.
//
// Constructive "only if" witnesses for Theorems 9 and 10: given an operation
// pair whose commutativity fails (with the analyzer's (α, ρ) witness), build
// the exact histories from the paper's proofs. Each history is permitted by
// the corresponding I(X, Spec, View, Conflict) when the pair is missing from
// Conflict — ReplayHistory verifies this — yet it is not dynamic atomic.

#ifndef CCR_CORE_COUNTEREXAMPLE_H_
#define CCR_CORE_COUNTEREXAMPLE_H_

#include "common/status.h"
#include "core/commutativity.h"
#include "core/history.h"

namespace ccr {

// Transaction ids used by the constructions (matching the paper's A..D).
inline constexpr TxnId kTxnA = 1;
inline constexpr TxnId kTxnB = 2;
inline constexpr TxnId kTxnC = 3;
inline constexpr TxnId kTxnD = 4;

// Theorem 9 only-if history for (p, q) ∈ NRBC with witness
// αqpρ ∈ Spec, αpqρ ∉ Spec:
//   A executes α; A commits; B executes q; C executes p;
//   B commits; C commits; D executes ρ; D commits.
// Permitted by I(X, Spec, UIP, Conflict) whenever (p, q) ∉ Conflict, but not
// serializable in the precedes-consistent order A-C-B-D.
StatusOr<History> BuildTheorem9History(const ObjectId& x, const Operation& p,
                                       const Operation& q,
                                       const RbcViolation& witness);

// Theorem 10 only-if history for (p, q) ∈ NFC. Case 1 (one of αpq, αqp
// illegal): A: α; A commits; B: p; C: q; B commits; C commits. Case 2
// (inequieffective): the same followed by D executing the distinguishing ρ.
// The roles of p and q are arranged so the history is permitted by
// I(X, Spec, DU, Conflict) whenever the pair is missing from Conflict.
StatusOr<History> BuildTheorem10History(const ObjectId& x, const Operation& p,
                                        const Operation& q,
                                        const FcViolation& witness);

}  // namespace ccr

#endif  // CCR_CORE_COUNTEREXAMPLE_H_
