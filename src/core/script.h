// Copyright 2026 The ccr Authors.
//
// HistoryScript: a small builder for constructing well-formed histories from
// transaction scripts ("A executes α at X; A commits; B executes Q; ...").
// Used by tests and by the Theorem 9/10 counterexample constructions.

#ifndef CCR_CORE_SCRIPT_H_
#define CCR_CORE_SCRIPT_H_

#include "common/status.h"
#include "core/history.h"

namespace ccr {

class HistoryScript {
 public:
  HistoryScript() = default;

  // Appends invoke + response events for one operation.
  HistoryScript& Exec(TxnId txn, const Operation& op);

  // Appends invoke + response events for a whole sequence.
  HistoryScript& ExecSeq(TxnId txn, const OpSeq& seq);

  // Appends a commit / abort event at `object`.
  HistoryScript& Commit(TxnId txn, const ObjectId& object);
  HistoryScript& Abort(TxnId txn, const ObjectId& object);

  // Appends a lone invocation (leaves it pending).
  HistoryScript& Invoke(TxnId txn, const Invocation& inv);

  // The accumulated history; kIllegalState if any step broke
  // well-formedness (the first error is latched).
  StatusOr<History> Build() const;

 private:
  History history_;
  Status status_;
};

}  // namespace ccr

#endif  // CCR_CORE_SCRIPT_H_
