// Copyright 2026 The ccr Authors.

#include "core/script.h"

namespace ccr {

HistoryScript& HistoryScript::Exec(TxnId txn, const Operation& op) {
  if (!status_.ok()) return *this;
  status_ = history_.Append(Event::Invoke(txn, op.inv()));
  if (!status_.ok()) return *this;
  status_ = history_.Append(Event::Response(txn, op.object(), op.result()));
  return *this;
}

HistoryScript& HistoryScript::ExecSeq(TxnId txn, const OpSeq& seq) {
  for (const Operation& op : seq) Exec(txn, op);
  return *this;
}

HistoryScript& HistoryScript::Commit(TxnId txn, const ObjectId& object) {
  if (!status_.ok()) return *this;
  status_ = history_.Append(Event::Commit(txn, object));
  return *this;
}

HistoryScript& HistoryScript::Abort(TxnId txn, const ObjectId& object) {
  if (!status_.ok()) return *this;
  status_ = history_.Append(Event::Abort(txn, object));
  return *this;
}

HistoryScript& HistoryScript::Invoke(TxnId txn, const Invocation& inv) {
  if (!status_.ok()) return *this;
  status_ = history_.Append(Event::Invoke(txn, inv));
  return *this;
}

StatusOr<History> HistoryScript::Build() const {
  if (!status_.ok()) return status_;
  return history_;
}

}  // namespace ccr
