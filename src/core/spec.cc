// Copyright 2026 The ccr Authors.

#include "core/spec.h"

#include "common/string_util.h"

namespace ccr {

std::vector<std::unique_ptr<SpecState>> SpecAutomaton::Next(
    const SpecState& state, const Operation& op) const {
  std::vector<std::unique_ptr<SpecState>> out;
  for (Outcome& outcome : Outcomes(state, op.inv())) {
    if (outcome.result == op.result()) {
      out.push_back(std::move(outcome.next));
    }
  }
  return out;
}

StateSet::StateSet(const StateSet& other) {
  states_.reserve(other.states_.size());
  for (const auto& s : other.states_) states_.push_back(s->Clone());
}

StateSet& StateSet::operator=(const StateSet& other) {
  if (this == &other) return *this;
  states_.clear();
  states_.reserve(other.states_.size());
  for (const auto& s : other.states_) states_.push_back(s->Clone());
  return *this;
}

StateSet StateSet::Singleton(std::unique_ptr<SpecState> state) {
  StateSet out;
  out.Insert(std::move(state));
  return out;
}

bool StateSet::Insert(std::unique_ptr<SpecState> state) {
  if (Contains(*state)) return false;
  states_.push_back(std::move(state));
  return true;
}

bool StateSet::Contains(const SpecState& state) const {
  for (const auto& s : states_) {
    if (s->Equals(state)) return true;
  }
  return false;
}

bool StateSet::Equals(const StateSet& other) const {
  if (states_.size() != other.states_.size()) return false;
  for (const auto& s : states_) {
    if (!other.Contains(*s)) return false;
  }
  return true;
}

size_t StateSet::Hash() const {
  // Order-insensitive combination.
  size_t h = 0;
  for (const auto& s : states_) h ^= s->Hash() * 0x9e3779b97f4a7c15ull;
  return h ^ states_.size();
}

StateSet StateSet::Step(const SpecAutomaton& spec, const Operation& op) const {
  StateSet out;
  for (const auto& s : states_) {
    for (auto& next : spec.Next(*s, op)) {
      out.Insert(std::move(next));
    }
  }
  return out;
}

StateSet StateSet::StepSeq(const SpecAutomaton& spec, const OpSeq& seq) const {
  StateSet cur = *this;
  for (const Operation& op : seq) {
    cur = cur.Step(spec, op);
    if (cur.empty()) break;
  }
  return cur;
}

std::vector<Value> StateSet::EnabledResults(const SpecAutomaton& spec,
                                            const Invocation& inv) const {
  std::vector<Value> results;
  for (const auto& s : states_) {
    for (const Outcome& outcome : spec.Outcomes(*s, inv)) {
      bool seen = false;
      for (const Value& r : results) {
        if (r == outcome.result) {
          seen = true;
          break;
        }
      }
      if (!seen) results.push_back(outcome.result);
    }
  }
  return results;
}

std::string StateSet::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(states_.size());
  for (const auto& s : states_) parts.push_back(s->ToString());
  std::string out = "{";
  out += StrJoin(parts, ", ");
  out += "}";
  return out;
}

StateSet RunSpec(const SpecAutomaton& spec, const OpSeq& seq) {
  return StateSet::Singleton(spec.InitialState()).StepSeq(spec, seq);
}

bool Legal(const SpecAutomaton& spec, const OpSeq& seq) {
  return !RunSpec(spec, seq).empty();
}

std::string Int64State::ToString() const {
  return StrFormat("%lld", static_cast<long long>(v));
}

}  // namespace ccr
