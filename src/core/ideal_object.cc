// Copyright 2026 The ccr Authors.

#include "core/ideal_object.h"

#include "common/string_util.h"

namespace ccr {

IdealObject::IdealObject(ObjectId id,
                         std::shared_ptr<const SpecAutomaton> spec,
                         std::shared_ptr<const View> view,
                         std::shared_ptr<const ConflictRelation> conflict)
    : id_(std::move(id)),
      spec_(std::move(spec)),
      view_(std::move(view)),
      conflict_(std::move(conflict)) {
  CCR_CHECK(spec_ != nullptr && view_ != nullptr && conflict_ != nullptr);
}

Status IdealObject::Invoke(TxnId txn, Invocation inv) {
  if (inv.object() != id_) {
    return Status::InvalidArgument(
        StrFormat("invocation for object %s sent to %s",
                  inv.object().c_str(), id_.c_str()));
  }
  return history_.Append(Event::Invoke(txn, std::move(inv)));
}

Status IdealObject::Commit(TxnId txn) {
  return history_.Append(Event::Commit(txn, id_));
}

Status IdealObject::Abort(TxnId txn) {
  return history_.Append(Event::Abort(txn, id_));
}

bool IdealObject::HasConflict(TxnId txn, const Operation& candidate) const {
  for (TxnId other : history_.Active()) {
    if (other == txn) continue;
    for (const Operation& held : history_.OpseqOfTxn(other)) {
      if (conflict_->Conflicts(candidate, held)) return true;
    }
  }
  return false;
}

std::vector<Value> IdealObject::EnabledResponses(TxnId txn) const {
  std::vector<Value> enabled;
  const std::optional<Invocation> pending = history_.PendingInvocation(txn);
  if (!pending.has_value()) return enabled;

  const OpSeq serial_state = view_->Compute(history_, txn);
  const StateSet states = RunSpec(*spec_, serial_state);
  for (const Value& result : states.EnabledResults(*spec_, *pending)) {
    const Operation candidate(*pending, result);
    if (!HasConflict(txn, candidate)) enabled.push_back(result);
  }
  return enabled;
}

StatusOr<Value> IdealObject::Respond(TxnId txn) {
  const std::optional<Invocation> pending = history_.PendingInvocation(txn);
  if (!pending.has_value()) {
    return Status::IllegalState(StrFormat(
        "%s has no pending invocation at %s", TxnName(txn).c_str(),
        id_.c_str()));
  }
  const OpSeq serial_state = view_->Compute(history_, txn);
  const StateSet states = RunSpec(*spec_, serial_state);
  const std::vector<Value> legal = states.EnabledResults(*spec_, *pending);
  if (legal.empty()) {
    return Status::IllegalState(StrFormat(
        "no legal result for %s by %s after view %s",
        pending->ToString().c_str(), TxnName(txn).c_str(),
        OpSeqToString(serial_state).c_str()));
  }
  bool all_conflicted = true;
  for (const Value& result : legal) {
    const Operation candidate(*pending, result);
    if (!HasConflict(txn, candidate)) {
      CCR_RETURN_IF_ERROR(
          history_.Append(Event::Response(txn, id_, result)));
      return result;
    }
    all_conflicted = all_conflicted && true;
  }
  return Status::Conflict(StrFormat(
      "%s blocked by conflicts at %s for %s", TxnName(txn).c_str(),
      id_.c_str(), pending->ToString().c_str()));
}

Status IdealObject::RespondWith(TxnId txn, const Value& result) {
  const std::optional<Invocation> pending = history_.PendingInvocation(txn);
  if (!pending.has_value()) {
    return Status::IllegalState(StrFormat(
        "%s has no pending invocation at %s", TxnName(txn).c_str(),
        id_.c_str()));
  }
  const Operation candidate(*pending, result);
  if (HasConflict(txn, candidate)) {
    return Status::Conflict(StrFormat(
        "%s conflicts with an active transaction", candidate.ToString().c_str()));
  }
  const OpSeq serial_state = view_->Compute(history_, txn);
  OpSeq extended = serial_state;
  extended.push_back(candidate);
  if (!Legal(*spec_, extended)) {
    return Status::IllegalState(StrFormat(
        "%s is not legal after view %s", candidate.ToString().c_str(),
        OpSeqToString(serial_state).c_str()));
  }
  return history_.Append(Event::Response(txn, id_, result));
}

Status ReplayHistory(IdealObject* object, const History& history) {
  for (const Event& e : history.events()) {
    switch (e.kind()) {
      case EventKind::kInvoke:
        CCR_RETURN_IF_ERROR(object->Invoke(e.txn(), e.invocation()));
        break;
      case EventKind::kResponse: {
        Status s = object->RespondWith(e.txn(), e.result());
        if (!s.ok()) {
          return Status(s.code(),
                        StrFormat("event %s not permitted: %s",
                                  e.ToString().c_str(),
                                  s.message().c_str()));
        }
        break;
      }
      case EventKind::kCommit:
        CCR_RETURN_IF_ERROR(object->Commit(e.txn()));
        break;
      case EventKind::kAbort:
        CCR_RETURN_IF_ERROR(object->Abort(e.txn()));
        break;
    }
  }
  return Status::OK();
}

}  // namespace ccr
