// Copyright 2026 The ccr Authors.

#include "sim/workload.h"

#include <thread>

#include "common/string_util.h"

namespace ccr {

CounterWorkload::CounterWorkload(
    TxnManager* manager, const CounterWorkloadSpec& spec,
    const std::function<std::shared_ptr<const ConflictRelation>(
        std::shared_ptr<Counter>)>& conflict_factory,
    const std::function<std::unique_ptr<RecoveryManager>(
        std::shared_ptr<Counter>)>& recovery_factory)
    : manager_(manager), spec_(spec) {
  CCR_CHECK(manager != nullptr);
  CCR_CHECK(spec.num_objects > 0);
  zipf_ = std::make_shared<Zipfian>(
      static_cast<uint64_t>(spec.num_objects), spec.zipf_theta);
  for (int i = 0; i < spec.num_objects; ++i) {
    auto ctr = MakeCounter(StrFormat("CTR%d", i));
    counters_.push_back(ctr);
    manager->AddObject(ctr->object_name(), ctr, conflict_factory(ctr),
                       recovery_factory(ctr));
  }
}

TxnBody CounterWorkload::Body() const {
  // Copies keep the body self-contained (the workload object may outlive
  // neither the driver nor the manager otherwise).
  auto counters = counters_;
  auto zipf = zipf_;
  const CounterWorkloadSpec spec = spec_;
  return [counters, zipf, spec](TxnManager* manager, Transaction* txn,
                                Random* rng) -> Status {
    for (int i = 0; i < spec.ops_per_txn; ++i) {
      const auto& ctr = counters[zipf->Sample(rng)];
      const size_t pick = rng->Weighted(
          {spec.inc_weight, spec.dec_weight, spec.read_weight});
      Invocation inv = pick == 0   ? ctr->IncInv(rng->UniformRange(1, 3))
                       : pick == 1 ? ctr->DecInv(1)
                                   : ctr->ReadInv();
      StatusOr<Value> r = manager->Execute(txn, inv);
      if (!r.ok()) return r.status();
      if (spec.hold_per_op.count() > 0) {
        std::this_thread::sleep_for(spec.hold_per_op);
      }
    }
    return Status::OK();
  };
}

int64_t CounterWorkload::TotalCommitted() const {
  int64_t total = 0;
  for (const auto& ctr : counters_) {
    AtomicObject* obj = manager_->object(ctr->object_name());
    CCR_CHECK(obj != nullptr);
    total +=
        TypedSpecAutomaton<Int64State>::Unwrap(*obj->CommittedState()).v;
  }
  return total;
}

}  // namespace ccr
