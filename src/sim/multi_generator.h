// Copyright 2026 The ccr Authors.
//
// Multi-object random schedule generation: transactions interleave across
// several reference objects, each possibly running a *different* recovery
// method and conflict relation. The merged global history is what
// Theorem 2 (local atomicity) quantifies over: if every object is dynamic
// atomic locally, the global history must be atomic — even with UIP at one
// object and DU at another.

#ifndef CCR_SIM_MULTI_GENERATOR_H_
#define CCR_SIM_MULTI_GENERATOR_H_

#include <vector>

#include "common/random.h"
#include "core/adt.h"
#include "core/ideal_object.h"
#include "sim/generator.h"

namespace ccr {

// One participating object and its invocation pool.
struct ObjectSetup {
  IdealObject* object;
  std::vector<Invocation> pool;
};

// Drives random transactions across all `objects`, committing/aborting each
// transaction consistently at every object it touched. Returns the merged
// global history (events in the order they occurred across objects).
History GenerateMultiSchedule(const std::vector<ObjectSetup>& objects,
                              Random* rng,
                              const ScheduleOptions& options = {});

}  // namespace ccr

#endif  // CCR_SIM_MULTI_GENERATOR_H_
