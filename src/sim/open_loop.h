// Copyright 2026 The ccr Authors.
//
// Open-loop load generator over the serving front end. Every PERF row
// before PR 10 was closed-loop: N driver threads each keep exactly one
// transaction in flight, so when the engine slows down the offered load
// politely slows down with it — the arrival process coordinates with the
// system under test and the reported latencies omit exactly the requests
// a real client population would have kept sending (coordinated
// omission). This generator is the honest counterpart:
//
//   * Arrivals are a Poisson process at `offered_rps`: inter-arrival gaps
//     are exponential draws from a seeded Random, so the schedule is
//     reproducible and independent of how the engine is doing.
//   * A dispatcher thread walks the schedule and submits each request at
//     (or as soon as possible after) its intended arrival time. It never
//     waits for a response — in-flight count is bounded by the front
//     end's admission queue, not by a thread pool.
//   * Latency is measured from the INTENDED arrival time, not the submit
//     time: if the dispatcher (or the admission queue) falls behind, the
//     queueing delay counts against the system. This is the
//     coordinated-omission-free definition; it is what a client that
//     asked at t would have experienced.
//   * Shed submissions (kResourceExhausted) are counted, not retried —
//     past saturation the interesting number is how much load the system
//     explicitly refuses while keeping admitted-request latency bounded.
//
// Latencies go to a kBuckets LatencyRecorder (bounded memory), so sweeps
// can run millions of requests per point.

#ifndef CCR_SIM_OPEN_LOOP_H_
#define CCR_SIM_OPEN_LOOP_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/latency_recorder.h"
#include "common/random.h"
#include "serve/frontend.h"

namespace ccr {

// Builds the i-th request's op batch. Runs on the dispatcher thread with
// its deterministic rng stream.
using RequestFactory =
    std::function<std::vector<BatchOp>(size_t index, Random* rng)>;

struct OpenLoopOptions {
  double offered_rps = 10000;  // Poisson arrival rate
  size_t requests = 10000;     // arrivals to generate
  uint64_t seed = 42;
};

struct OpenLoopResult {
  size_t submitted = 0;      // arrivals dispatched
  size_t completed_ok = 0;   // acked OK (latency recorded)
  size_t completed_error = 0;
  size_t shed = 0;           // refused at the door (kResourceExhausted)
  double offered_rps = 0;    // what the schedule asked for
  double achieved_rps = 0;   // completed_ok / wall time
  double duration_s = 0;     // first intended arrival -> last completion
  uint64_t p50_us = 0;       // intended-arrival-to-ack latency of OK acks
  uint64_t p99_us = 0;
  uint64_t max_us = 0;
  double mean_us = 0;
  LatencyRecorder latency{LatencyMode::kBuckets};
  // Total per-op results delivered with OK acks; the conservation audit
  // compares this against the journal's op count.
  uint64_t completed_ops = 0;
};

// Runs one open-loop point against `frontend` and blocks until every
// admitted submission has completed.
OpenLoopResult RunOpenLoop(ServeFrontend* frontend,
                           const RequestFactory& make_request,
                           const OpenLoopOptions& options);

}  // namespace ccr

#endif  // CCR_SIM_OPEN_LOOP_H_
