// Copyright 2026 The ccr Authors.

#include "sim/crash_harness.h"

#include <algorithm>

namespace ccr {
namespace {

// Per-object projection of a record list: the ops at `id`, in order.
OpSeq ProjectOps(const std::vector<Journal::CommitRecord>& records,
                 const ObjectId& id) {
  OpSeq out;
  for (const Journal::CommitRecord& record : records) {
    for (const Operation& op : record.ops) {
      if (op.object() == id) out.push_back(op);
    }
  }
  return out;
}

bool SameRecord(const Journal::CommitRecord& a,
                const Journal::CommitRecord& b) {
  return a.txn == b.txn && a.ops == b.ops;
}

}  // namespace

CrashScenarioResult RunCrashScenario(const SystemFactory& factory,
                                     const TxnBody& body,
                                     const CrashScenarioOptions& options) {
  CrashScenarioResult result;

  // The pre-crash world: a fresh system journaling durably to an
  // in-memory "disk" through the group-commit pipeline (mode per
  // options; kSync reproduces the per-record-sync baseline).
  TxnManager manager;
  factory(&manager);
  MemorySink sink;
  JournalWriter writer(&sink);
  GroupCommitPipeline pipeline(&writer, options.group_commit);
  Journal journal;
  journal.set_pipeline(&pipeline);
  manager.set_commit_pipeline(&pipeline);
  for (AtomicObject* obj : manager.objects()) {
    obj->recovery().set_journal(&journal);
  }
  RunWorkload(&manager, body, options.driver);
  // Flush everything sequenced before inspecting the disk — the flusher
  // may still hold a lingering batch (and under kRelaxed, acknowledged
  // but not yet durable records).
  pipeline.Drain();

  const std::string& image = sink.image();
  result.image_bytes = image.size();
  result.records_total = journal.size();
  result.syncs_total = writer.sync_offsets().size();

  // The crash: everything volatile dies; only the first crash_offset bytes
  // of the disk survive.
  const double fraction = std::clamp(options.crash_fraction, 0.0, 1.0);
  result.crash_offset =
      static_cast<uint64_t>(static_cast<double>(image.size()) * fraction);
  const std::string_view crashed =
      std::string_view(image).substr(0, result.crash_offset);

  // The acknowledgment audit's ground truth: a sync whose offset exceeds
  // the surviving bytes cannot have completed before the crash, so the
  // acknowledged transactions are exactly those whose record lies under
  // the last completed sync. (Under kRelaxed the engine acks earlier by
  // contract; the watermark — which is what this computes — is still the
  // only durability promise made.)
  uint64_t last_sync = 0;
  for (const uint64_t off : writer.sync_offsets()) {
    if (off <= result.crash_offset) last_sync = std::max(last_sync, off);
  }
  for (size_t i = 0; i < writer.records_appended(); ++i) {
    if (writer.boundary(i + 1) <= last_sync) ++result.acked_records;
  }

  // Restart: a newly built system recovered from the surviving bytes.
  TxnManager restarted;
  factory(&restarted);
  result.status = restarted.RestartFromImage(crashed, &result.report);
  if (!result.status.ok()) return result;

  // Audit 3: every record a completed sync covered — every possibly
  // acknowledged commit — survived recovery.
  result.acked_recovered = result.report.records_replayed >=
                           result.acked_records;

  // Audit 1: the scanned records are a prefix of the run's commit order.
  StatusOr<Journal> scanned = ScanJournalImage(crashed, nullptr);
  CCR_CHECK(scanned.ok());  // RestartFromImage just accepted this image
  const std::vector<Journal::CommitRecord> prefix = scanned->Records();
  const std::vector<Journal::CommitRecord> full = journal.Records();
  result.prefix_of_commit_order = prefix.size() <= full.size();
  for (size_t i = 0; result.prefix_of_commit_order && i < prefix.size();
       ++i) {
    result.prefix_of_commit_order = SameRecord(prefix[i], full[i]);
  }

  // Audit 2: every recovered object equals the spec-level replay of its
  // projection of that prefix — RecoverState, independent of the engine
  // path Restart used.
  result.state_matches_prefix = true;
  for (AtomicObject* obj : restarted.objects()) {
    Journal per_object(
        {Journal::CommitRecord{1, ProjectOps(prefix, obj->id())}});
    const std::unique_ptr<SpecState> expected =
        RecoverState(obj->adt(), per_object);
    if (!obj->CommittedState()->Equals(*expected)) {
      result.state_matches_prefix = false;
      break;
    }
  }
  return result;
}

}  // namespace ccr
