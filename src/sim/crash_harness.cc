// Copyright 2026 The ccr Authors.

#include "sim/crash_harness.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <thread>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/string_util.h"
#include "common/temp_path.h"
#include "store/log_store.h"
#include "txn/checkpoint.h"

namespace ccr {
namespace {

bool SameEntry(const Journal::Entry& a, const Journal::Entry& b) {
  if (a.is_lifecycle != b.is_lifecycle) return false;
  if (a.is_lifecycle) {
    return a.lifecycle.kind == b.lifecycle.kind &&
           a.lifecycle.object == b.lifecycle.object &&
           a.lifecycle.factory == b.lifecycle.factory;
  }
  return a.commit.txn == b.commit.txn && a.commit.ops == b.commit.ops;
}

// Per-id state a prefix of journal entries implies: the current
// incarnation's ops (a `create` is an incarnation boundary that clears
// them), which ids end the prefix dropped, and which end it dynamically
// created and live.
struct ExpectedState {
  std::map<ObjectId, OpSeq> ops;
  std::set<ObjectId> dropped;
  std::set<ObjectId> dynamic_live;
};

ExpectedState ComputeExpected(const std::vector<Journal::Entry>& prefix) {
  ExpectedState out;
  for (const Journal::Entry& entry : prefix) {
    if (entry.is_lifecycle) {
      const LifecycleRecord& lc = entry.lifecycle;
      out.ops[lc.object].clear();
      if (lc.kind == LifecycleRecord::Kind::kCreate) {
        out.dropped.erase(lc.object);
        out.dynamic_live.insert(lc.object);
      } else {
        out.dropped.insert(lc.object);
        out.dynamic_live.erase(lc.object);
      }
      continue;
    }
    for (const Operation& op : entry.commit.ops) {
      out.ops[op.object()].push_back(op);
    }
  }
  return out;
}

// Lifecycle-aware state audit: every live object of `restarted` must equal
// the spec-level replay (RecoverState — independent of the engine path the
// restart used) of its incarnation's op projection; every id the prefix
// ends dropped must not resolve; every id it ends created must.
bool AuditStateAgainstPrefix(TxnManager* restarted,
                             const std::vector<Journal::Entry>& prefix) {
  const ExpectedState expected = ComputeExpected(prefix);
  for (const ObjectId& id : expected.dropped) {
    if (restarted->object(id) != nullptr) return false;
  }
  for (const ObjectId& id : expected.dynamic_live) {
    if (restarted->object(id) == nullptr) return false;
  }
  for (AtomicObject* obj : restarted->objects()) {
    OpSeq ops;
    if (const auto it = expected.ops.find(obj->id());
        it != expected.ops.end()) {
      ops = it->second;
    }
    Journal per_object({Journal::CommitRecord{1, std::move(ops)}});
    const std::unique_ptr<SpecState> want =
        RecoverState(obj->adt(), per_object);
    if (!obj->CommittedState()->Equals(*want)) return false;
  }
  return true;
}

// Applies one ground-truth entry to the replica manager. Commit records:
// group ops per object (preserving per-object order) and replay each group
// at `lsn`, so the replica's per-object last-committed LSNs track the
// durable journal exactly — which is what makes its fuzzy checkpoints
// sound. Lifecycle records: re-create through the replica's own factory
// registry / retire (the replica has no lifecycle journal attached, so the
// mirror never double-journals).
Status MirrorApply(TxnManager* replica, const Journal::Entry& entry,
                   Lsn lsn) {
  if (entry.is_lifecycle) {
    const LifecycleRecord& lc = entry.lifecycle;
    if (lc.kind == LifecycleRecord::Kind::kCreate) {
      return replica->GetOrCreate(lc.object, lc.factory).status();
    }
    return replica->DropObject(lc.object);
  }
  const Journal::CommitRecord& record = entry.commit;
  std::vector<std::pair<AtomicObject*, OpSeq>> grouped;
  for (const Operation& op : record.ops) {
    AtomicObject* obj = replica->object(op.object());
    if (obj == nullptr) {
      return Status::Internal(StrFormat(
          "workload touched object %s the factory did not build",
          op.object().c_str()));
    }
    bool found = false;
    for (auto& [existing, ops] : grouped) {
      if (existing == obj) {
        ops.push_back(op);
        found = true;
        break;
      }
    }
    if (!found) grouped.emplace_back(obj, OpSeq{op});
  }
  for (auto& [obj, ops] : grouped) {
    CCR_RETURN_IF_ERROR(obj->ReplayCommitted(record.txn, ops, lsn));
  }
  replica->AdvanceTxnWatermark(record.txn);
  return Status::OK();
}

// Temp directory for one scenario's segmented journal + checkpoints.
// Removed (with contents) on destruction.
class ScopedTempDir {
 public:
  ScopedTempDir() { path_ = MakeTempDir("ccr_ckpt_"); }
  ~ScopedTempDir() {
    if (path_.empty()) return;
    if (StatusOr<std::vector<std::string>> names = ListDir(path_);
        names.ok()) {
      for (const std::string& name : *names) {
        std::remove((path_ + "/" + name).c_str());
      }
    }
#ifndef _WIN32
    ::rmdir(path_.c_str());
#endif
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Post-run crash audit shared by the driver and serving scenarios: cut the
// image at `crash_fraction`, compute the acked ground truth from the sync
// offsets, restart a freshly built system from the surviving bytes, and
// run audits 1-4 into `result`.
void AuditCrashImage(const SystemFactory& factory, const Journal& journal,
                     const JournalWriter& writer, const std::string& image,
                     double crash_fraction, CrashScenarioResult* result);

}  // namespace

CrashScenarioResult RunCrashScenario(const SystemFactory& factory,
                                     const TxnBody& body,
                                     const CrashScenarioOptions& options) {
  CrashScenarioResult result;

  // The pre-crash world: a fresh system journaling durably to an
  // in-memory "disk" through the group-commit pipeline (mode per
  // options; kSync reproduces the per-record-sync baseline).
  TxnManager manager;
  factory(&manager);
  MemorySink sink;
  JournalWriter writer(&sink);
  GroupCommitPipeline pipeline(&writer, options.group_commit);
  Journal journal;
  journal.set_pipeline(&pipeline);
  manager.set_commit_pipeline(&pipeline);
  manager.set_lifecycle_journal(&journal);
  for (AtomicObject* obj : manager.objects()) {
    obj->recovery().set_journal(&journal);
  }
  RunWorkload(&manager, body, options.driver);
  // Flush everything sequenced before inspecting the disk — the flusher
  // may still hold a lingering batch (and under kRelaxed, acknowledged
  // but not yet durable records).
  pipeline.Drain();

  AuditCrashImage(factory, journal, writer, sink.image(),
                  options.crash_fraction, &result);
  return result;
}

namespace {

void AuditCrashImage(const SystemFactory& factory, const Journal& journal,
                     const JournalWriter& writer, const std::string& image,
                     double crash_fraction, CrashScenarioResult* res) {
  CrashScenarioResult& result = *res;
  result.image_bytes = image.size();
  result.records_total = journal.size();
  result.syncs_total = writer.sync_offsets().size();

  // The crash: everything volatile dies; only the first crash_offset bytes
  // of the disk survive.
  const double fraction = std::clamp(crash_fraction, 0.0, 1.0);
  result.crash_offset =
      static_cast<uint64_t>(static_cast<double>(image.size()) * fraction);
  const std::string_view crashed =
      std::string_view(image).substr(0, result.crash_offset);

  // The acknowledgment audit's ground truth: a sync whose offset exceeds
  // the surviving bytes cannot have completed before the crash, so the
  // acknowledged transactions are exactly those whose record lies under
  // the last completed sync. (Under kRelaxed the engine acks earlier by
  // contract; the watermark — which is what this computes — is still the
  // only durability promise made.)
  uint64_t last_sync = 0;
  for (const uint64_t off : writer.sync_offsets()) {
    if (off <= result.crash_offset) last_sync = std::max(last_sync, off);
  }
  for (size_t i = 0; i < writer.records_appended(); ++i) {
    if (writer.boundary(i + 1) <= last_sync) ++result.acked_records;
  }

  // Restart: a newly built system recovered from the surviving bytes.
  TxnManager restarted;
  factory(&restarted);
  result.status = restarted.RestartFromImage(crashed, &result.report);
  if (!result.status.ok()) return;

  // Audit 3: every record a completed sync covered — every possibly
  // acknowledged commit — survived recovery.
  result.acked_recovered = result.report.records_replayed >=
                           result.acked_records;

  // Audit 1: the scanned entries (commit + lifecycle) are a prefix of the
  // run's journaled sequence.
  StatusOr<Journal> scanned = ScanJournalImage(crashed, nullptr);
  CCR_CHECK(scanned.ok());  // RestartFromImage just accepted this image
  const std::vector<Journal::Entry> prefix = scanned->Entries();
  const std::vector<Journal::Entry> full = journal.Entries();
  result.prefix_of_commit_order = prefix.size() <= full.size();
  for (size_t i = 0; result.prefix_of_commit_order && i < prefix.size();
       ++i) {
    result.prefix_of_commit_order = SameEntry(prefix[i], full[i]);
  }

  // Audit 2: every recovered object equals the spec-level replay of its
  // incarnation's projection of that prefix, dropped ids are gone, and
  // created ids are back.
  result.state_matches_prefix = AuditStateAgainstPrefix(&restarted, prefix);

  // Audit 4: multi-object commit records are all-or-nothing. After replay
  // an object's last_committed_lsn is the highest replayed record LSN
  // naming it, and per-object records are totally ordered in the journal —
  // so record L was applied at object o iff last_committed_lsn(o) >= L.
  // A batch record applied at a strict, non-empty subset of its objects is
  // a torn batch.
  for (size_t i = 0; i < full.size(); ++i) {
    const Journal::Entry& entry = full[i];
    if (entry.is_lifecycle) continue;
    std::set<ObjectId> batch_objects;
    for (const Operation& op : entry.commit.ops) {
      batch_objects.insert(op.object());
    }
    if (batch_objects.size() < 2) continue;
    ++result.batch_records_total;
    const Lsn lsn = static_cast<Lsn>(i) + 1;
    size_t applied = 0;
    for (const ObjectId& id : batch_objects) {
      AtomicObject* obj = restarted.object(id);
      if (obj != nullptr && obj->last_committed_lsn() >= lsn) ++applied;
    }
    if (applied == batch_objects.size()) {
      ++result.batch_records_recovered;
    } else if (applied != 0) {
      ++result.batch_records_partial;
    }
  }
}

}  // namespace

ServeCrashResult RunServeCrashScenario(const SystemFactory& factory,
                                       const RequestFactory& make_request,
                                       const ServeCrashOptions& options) {
  ServeCrashResult result;

  // The pre-crash world, served: the same durable in-memory "disk" as
  // RunCrashScenario, but transactions arrive through the ServeFrontend —
  // coalesced at the boundary, committed via CommitAsync, acked off the
  // durable watermark.
  TxnManager manager;
  factory(&manager);
  MemorySink sink;
  JournalWriter writer(&sink);
  GroupCommitPipeline pipeline(&writer, options.group_commit);
  Journal journal;
  journal.set_pipeline(&pipeline);
  manager.set_commit_pipeline(&pipeline);
  manager.set_lifecycle_journal(&journal);
  for (AtomicObject* obj : manager.objects()) {
    obj->recovery().set_journal(&journal);
  }

  std::atomic<uint64_t> completed_ops{0};
  {
    ServeFrontend frontend(&manager, options.frontend);
    // Unpaced burst from several submitter threads: the queue genuinely
    // fills (max_queue_depth/shed below prove it), so any mid-run instant
    // — in particular the one the crash cut lands on — has submissions
    // queued and acks outstanding.
    std::vector<std::thread> submitters;
    std::atomic<size_t> next{0};
    for (size_t t = 0; t < std::max<size_t>(1, options.submit_threads); ++t) {
      submitters.emplace_back([&, t] {
        Random rng(options.seed + 7919 * (t + 1));
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= options.requests) break;
          const Status admitted = frontend.SubmitAsync(
              make_request(i, &rng),
              [&completed_ops](const Status& s, std::vector<Value> values) {
                if (s.ok()) {
                  completed_ops.fetch_add(values.size(),
                                          std::memory_order_relaxed);
                }
              });
          if (!admitted.ok()) {
            // Shed: a real client backs off. Yielding lets the batcher
            // drain, so the burst both sheds (queue-full behavior) and
            // still lands enough accepted groups for the recovery audits
            // to have a meaningful record sequence to check.
            std::this_thread::yield();
          }
        }
      });
    }
    for (std::thread& th : submitters) th.join();
    frontend.Drain();
    const ServeStats stats = frontend.stats();
    result.submitted = stats.submitted;
    result.accepted = stats.accepted;
    result.shed = stats.shed;
    result.completed_ok = stats.completed_ok;
    result.completed_error = stats.completed_error;
    result.max_queue_depth = stats.max_queue_depth;
    result.coalesced_txns = stats.coalesced_txns;
    // The front end stops (and its pending acks finish) before the
    // pipeline below drains and the "disk" is inspected.
  }
  pipeline.Drain();
  result.completed_ops = completed_ops.load();

  // Conservation at the journal: every op the journal holds belongs to
  // exactly one OK-acked submission and vice versa — shed and failed
  // submissions left no trace, acked ones left exactly their ops.
  for (const Journal::Entry& entry : journal.Entries()) {
    if (!entry.is_lifecycle) result.journal_ops += entry.commit.ops.size();
  }
  result.ops_conserved = result.journal_ops == result.completed_ops;

  AuditCrashImage(factory, journal, writer, sink.image(),
                  options.crash_fraction, &result.crash);

  // Submissions in flight at the crash instant: records any part of which
  // lies past the cut were still unacked (their sync had not completed)
  // when the machine died.
  size_t under_cut = 0;
  for (size_t i = 0; i < writer.records_appended(); ++i) {
    if (writer.boundary(i + 1) <= result.crash.crash_offset) ++under_cut;
  }
  result.inflight_at_crash = result.crash.records_total - under_cut;
  return result;
}

CheckpointCrashResult RunCheckpointCrashScenario(
    const SystemFactory& factory, const TxnBody& body,
    const CheckpointCrashOptions& options) {
  CheckpointCrashResult result;

  // Phase 1 — ground truth. The workload runs against a volatile journal;
  // its in-memory record sequence is the commit order the durable replay
  // below will feed through the segmented sink. (The group-commit pipeline
  // aborts the process on writer errors by design, so the crash-injected
  // sink cannot sit behind a live workload; feeding the recorded sequence
  // through the sink directly gives the harness record-exact control over
  // what the "disk" received.)
  TxnManager workload_manager;
  factory(&workload_manager);
  Journal journal;
  workload_manager.set_lifecycle_journal(&journal);
  for (AtomicObject* obj : workload_manager.objects()) {
    obj->recovery().set_journal(&journal);
  }
  RunWorkload(&workload_manager, body, options.driver);
  const std::vector<Journal::Entry> entries = journal.Entries();
  result.records_total = entries.size();

  // Phase 2 — the durable run. Replay the sequence through a segmented
  // sink with the crash point armed, mirror-applying every record that
  // reached the disk into a replica manager; maintenance passes checkpoint
  // the replica and truncate dead segments. Once the armed point fires,
  // everything else fails fast — the tail after it is lost.
  ScopedTempDir dir;
  if (dir.path().empty()) {
    result.status = Status::Internal("cannot create scenario temp dir");
    return result;
  }
  CrashPoints crash;
  if (!options.crash_point.empty()) crash.Arm(options.crash_point);
  SegmentedSinkOptions sink_options;
  sink_options.max_segment_bytes = options.max_segment_bytes;
  sink_options.crash = &crash;
  StatusOr<std::unique_ptr<SegmentedFileSink>> sink =
      SegmentedFileSink::Open(dir.path(), 1, sink_options);
  if (!sink.ok()) {
    result.status = sink.status();
    return result;
  }
  TxnManager replica;
  factory(&replica);
  Checkpointer checkpointer(dir.path(), CheckpointerOptions{2, &crash});
  const size_t every = options.checkpoint_every > 0
                           ? options.checkpoint_every
                           : std::max<size_t>(1, entries.size() / 3);
  for (size_t i = 0; i < entries.size(); ++i) {
    const Lsn lsn = static_cast<Lsn>(i) + 1;
    const Status append = (*sink)->Append(EncodeEntryRecord(entries[i]));
    if (!append.ok()) {
      if (!crash.dead()) result.status = append;  // real failure, not crash
      break;
    }
    // Crash points sit at operation boundaries, so a successful Append put
    // the whole record on the (simulated) disk.
    ++result.records_appended;
    const Status sync = (*sink)->Sync();
    if (sync.ok()) ++result.acked_records;
    const Status mirror = MirrorApply(&replica, entries[i], lsn);
    if (!mirror.ok()) {
      result.status = mirror;
      break;
    }
    if (!sync.ok()) {
      if (!crash.dead()) result.status = sync;
      break;
    }
    if ((i + 1) % every == 0) {
      // Maintenance pass. The anchor is captured before the checkpoint
      // walk (here trivially: the replay is synchronous, so every record
      // <= lsn is in the replica); truncation runs only after Write
      // returned — i.e. only below a durable checkpoint.
      const StatusOr<Lsn> written = checkpointer.Write(&replica, lsn);
      if (written.ok()) {
        ++result.checkpoints_written;
        const size_t before = (*sink)->segment_count();
        const Status trunc = (*sink)->TruncateBelow(*written);
        if (trunc.ok()) {
          if ((*sink)->segment_count() < before) ++result.truncations;
        } else if (!crash.dead()) {
          result.status = trunc;
          break;
        }
      } else if (!crash.dead()) {
        result.status = written.status();
        break;
      }
      if (crash.dead()) break;
    }
  }
  result.crash_fired = crash.fired();
  if (!result.status.ok()) return result;

  // Phase 3 — recovery and audit. A fresh system restarts from whatever
  // the directory holds; it must land on exactly the appended prefix.
  TxnManager restarted;
  factory(&restarted);
  StatusOr<RestartSummary> summary = restarted.RestartFromDir(
      dir.path(), RestartOptions{options.replay_threads});
  if (!summary.ok()) {
    result.status = summary.status();
    return result;
  }
  result.summary = *summary;
  result.recovered_all_appended =
      result.summary.high_lsn == static_cast<Lsn>(result.records_appended);

  const std::vector<Journal::Entry> prefix(
      entries.begin(),
      entries.begin() + static_cast<ptrdiff_t>(result.records_appended));
  result.state_matches_prefix = AuditStateAgainstPrefix(&restarted, prefix);
  return result;
}

StoreCrashResult RunStoreCrashScenario(const SystemFactory& factory,
                                       const TxnBody& body,
                                       const StoreCrashOptions& options) {
  StoreCrashResult result;

  // Phase 1 — ground truth (same as the checkpoint scenario): the workload
  // runs against a volatile journal to fix the commit-record sequence.
  TxnManager workload_manager;
  factory(&workload_manager);
  Journal journal;
  workload_manager.set_lifecycle_journal(&journal);
  for (AtomicObject* obj : workload_manager.objects()) {
    obj->recovery().set_journal(&journal);
  }
  RunWorkload(&workload_manager, body, options.driver);
  const std::vector<Journal::Entry> entries = journal.Entries();
  result.records_total = entries.size();

  // Phase 2 — the durable run, now with the store in the loop. The journal
  // sink, the checkpointer, and the log-structured store share one
  // CrashPoints: wherever the armed point lives, once it fires every later
  // append, checkpoint, store batch, and compaction fails — the machine is
  // dead.
  ScopedTempDir dir;
  if (dir.path().empty()) {
    result.status = Status::Internal("cannot create scenario temp dir");
    return result;
  }
  CrashPoints crash;
  SegmentedSinkOptions sink_options;
  sink_options.max_segment_bytes = options.max_segment_bytes;
  sink_options.crash = &crash;
  StatusOr<std::unique_ptr<SegmentedFileSink>> sink =
      SegmentedFileSink::Open(dir.path(), 1, sink_options);
  if (!sink.ok()) {
    result.status = sink.status();
    return result;
  }
  LogStoreOptions store_options;
  store_options.max_segment_bytes = options.store_segment_bytes;
  store_options.crash = &crash;
  StatusOr<std::unique_ptr<LogStructuredStore>> store =
      LogStructuredStore::Open(dir.path(), store_options);
  if (!store.ok()) {
    result.status = store.status();
    return result;
  }
  // Armed only now: the initial segment creations above belong to setup
  // (mirroring the journal sink, whose Open also bypasses crash points);
  // rotation points fire at the first mid-run rotation instead.
  if (!options.crash_point.empty()) crash.Arm(options.crash_point);
  TxnManager replica;
  factory(&replica);
  replica.set_object_store(store->get());
  CheckpointerOptions ckpt_options;
  ckpt_options.crash = &crash;
  ckpt_options.store = store->get();
  ckpt_options.also_write_file = options.also_write_file;
  Checkpointer checkpointer(dir.path(), ckpt_options);
  const size_t every = options.checkpoint_every > 0
                           ? options.checkpoint_every
                           : std::max<size_t>(1, entries.size() / 3);
  size_t evict_cursor = 0;
  bool dead = false;
  for (size_t i = 0; i < entries.size() && !dead; ++i) {
    const Lsn lsn = static_cast<Lsn>(i) + 1;
    const Status append = (*sink)->Append(EncodeEntryRecord(entries[i]));
    if (!append.ok()) {
      if (!crash.dead()) result.status = append;
      break;
    }
    ++result.records_appended;
    const Status sync = (*sink)->Sync();
    if (sync.ok()) ++result.acked_records;
    // Mirror-apply even an unacked record — the replica is volatile state
    // of the dying machine. An evicted object faults back in here, which
    // Gets from the store; after the crash fired that Get fails too, which
    // is fine — recovery only ever reads the disk, not the replica.
    const Status mirror = MirrorApply(&replica, entries[i], lsn);
    if (!mirror.ok()) {
      if (!crash.dead()) result.status = mirror;
      break;
    }
    if (!sync.ok()) {
      if (!crash.dead()) result.status = sync;
      break;
    }
    // Eviction pass: push one quiescent object's state out to the store
    // (buffered Put — the next checkpoint sync hardens it). Round-robin so
    // later mirror-applies fault evicted objects back in.
    if (options.evict_every > 0 && (i + 1) % options.evict_every == 0) {
      const std::vector<AtomicObject*> objects = replica.objects();
      for (size_t probe = 0; probe < objects.size(); ++probe) {
        AtomicObject* victim = objects[(evict_cursor + probe) %
                                       objects.size()];
        if (victim->evicted()) continue;
        const size_t before = replica.evicted_objects();
        const Status evict = replica.EvictObject(victim->id());
        if (!evict.ok() && crash.dead()) {
          dead = true;
          break;
        }
        if (evict.ok() && replica.evicted_objects() > before) {
          ++result.evictions;
          evict_cursor = (evict_cursor + probe + 1) % objects.size();
          break;
        }
        // Raced / not evictable: try the next candidate.
      }
      if (dead) break;
    }
    if ((i + 1) % every == 0) {
      // Maintenance pass: store-backed checkpoint (one synced batch of
      // resident Puts + the meta key — the sync also hardens earlier
      // buffered eviction Puts), then truncation keyed to the now-durable
      // anchor, then a forced compaction of the store's oldest segment.
      const StatusOr<Lsn> written = checkpointer.Write(&replica, lsn);
      if (written.ok()) {
        ++result.checkpoints_written;
        const size_t before = (*sink)->segment_count();
        const Status trunc = (*sink)->TruncateBelow(*written);
        if (trunc.ok()) {
          if ((*sink)->segment_count() < before) ++result.truncations;
        } else if (!crash.dead()) {
          result.status = trunc;
          break;
        }
        const Status compact = (*store)->CompactNow();
        if (!compact.ok() && !crash.dead()) {
          result.status = compact;
          break;
        }
      } else if (!crash.dead()) {
        result.status = written.status();
        break;
      }
      if (crash.dead()) break;
    }
  }
  result.crash_fired = crash.fired();
  result.store_compactions = (*store)->stats().compactions;
  // The crash destroys the machine: close the dying store's descriptors
  // before recovery opens the surviving segments fresh.
  store->reset();
  if (!result.status.ok()) return result;

  // Phase 3 — recovery and audit. A fresh system with a freshly opened
  // store restarts from whatever the directory holds (store images + meta,
  // checkpoint files if any, journal tail) and must land on exactly the
  // appended prefix.
  StatusOr<std::unique_ptr<LogStructuredStore>> reopened =
      LogStructuredStore::Open(dir.path(), LogStoreOptions{});
  if (!reopened.ok()) {
    result.status = reopened.status();
    return result;
  }
  TxnManager restarted;
  factory(&restarted);
  restarted.set_object_store(reopened->get());
  StatusOr<RestartSummary> summary = restarted.RestartFromDir(
      dir.path(), RestartOptions{options.replay_threads});
  if (!summary.ok()) {
    result.status = summary.status();
    return result;
  }
  result.summary = *summary;
  result.recovered_all_appended =
      result.summary.high_lsn == static_cast<Lsn>(result.records_appended);

  const std::vector<Journal::Entry> prefix(
      entries.begin(),
      entries.begin() + static_cast<ptrdiff_t>(result.records_appended));
  result.state_matches_prefix = AuditStateAgainstPrefix(&restarted, prefix);
  return result;
}

}  // namespace ccr
