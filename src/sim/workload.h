// Copyright 2026 The ccr Authors.
//
// Declarative workloads over a bank of counter objects: a transaction
// performs a fixed number of operations, each drawn from a weighted op mix
// and directed at an object chosen by a Zipfian distribution — the standard
// way to dial contention (skew concentrates traffic on a few hot objects).

#ifndef CCR_SIM_WORKLOAD_H_
#define CCR_SIM_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "adt/counter.h"
#include "common/random.h"
#include "sim/driver.h"
#include "txn/txn_manager.h"

namespace ccr {

// Which conflict relation / recovery method a workload bank runs under is
// the caller's choice; the workload itself only fixes shape.
struct CounterWorkloadSpec {
  int num_objects = 16;
  double zipf_theta = 0.0;  // 0 = uniform; ~0.99 = classic YCSB skew
  int ops_per_txn = 2;
  // Operation mix weights: increment / (blocking) decrement / read.
  double inc_weight = 0.7;
  double dec_weight = 0.0;
  double read_weight = 0.3;
  // Simulated per-operation lock-hold time (sleep; see bench_util.h
  // rationale — this is what makes conflicts visible on any host).
  std::chrono::microseconds hold_per_op{200};
};

// A bank of counter objects registered to a manager, plus the transaction
// body implementing the spec. Create one per experiment cell.
class CounterWorkload {
 public:
  // Registers `spec.num_objects` counters named CTR0.. on `manager`, each
  // with the given conflict/recovery factory.
  CounterWorkload(
      TxnManager* manager, const CounterWorkloadSpec& spec,
      const std::function<std::shared_ptr<const ConflictRelation>(
          std::shared_ptr<Counter>)>& conflict_factory,
      const std::function<std::unique_ptr<RecoveryManager>(
          std::shared_ptr<Counter>)>& recovery_factory);

  // The driver body: one transaction of the spec's shape.
  TxnBody Body() const;

  // Sum of committed counter values across the bank.
  int64_t TotalCommitted() const;

  const std::vector<std::shared_ptr<Counter>>& counters() const {
    return counters_;
  }

 private:
  TxnManager* manager_;
  CounterWorkloadSpec spec_;
  std::vector<std::shared_ptr<Counter>> counters_;
  std::shared_ptr<Zipfian> zipf_;
};

}  // namespace ccr

#endif  // CCR_SIM_WORKLOAD_H_
