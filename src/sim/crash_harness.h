// Copyright 2026 The ccr Authors.
//
// Crash-restart scenario over the multithreaded engine: run a workload
// with a durable journal, kill the "machine" at an arbitrary byte offset
// of the on-disk image (losing all volatile state), recover a freshly
// built system from the surviving bytes, and audit the result against the
// commit order the run actually produced:
//
//   1. the scanned records must be a prefix of the run's commit order
//      (per object — each object's records appear in its commit order);
//   2. every recovered object's committed state must equal an independent
//      spec-level replay of that prefix (RecoverState, not the engine);
//   3. the ack-durability contract: every commit record covered by a
//      completed sync at or below the crash offset — i.e. every
//      transaction whose commit could have been *acknowledged* before the
//      crash — is recovered. Unacknowledged records may go either way but
//      must still recover to a clean prefix (audits 1 and 2).
//
// The run journals through a GroupCommitPipeline in any DurabilityMode
// (kSync per-record baseline, kGroup batched, kRelaxed fire-and-forget),
// so crash points land mid-batch as well as mid-record. This is the
// driver-level crash scenario behind the randomized crash-restart
// property tests and the fault sweeps in bench_journal.

#ifndef CCR_SIM_CRASH_HARNESS_H_
#define CCR_SIM_CRASH_HARNESS_H_

#include <functional>
#include <string>

#include "serve/frontend.h"
#include "sim/driver.h"
#include "sim/open_loop.h"
#include "txn/group_commit.h"
#include "txn/journal_io.h"

namespace ccr {

// Builds the system's objects into a fresh manager. Called twice per
// scenario: once for the pre-crash run, once for the post-crash restart —
// a crash loses every volatile structure, so recovery must start from a
// newly constructed engine.
using SystemFactory = std::function<void(TxnManager* manager)>;

struct CrashScenarioOptions {
  DriverOptions driver;
  // Crash point as a fraction of the final image size (0 = before any
  // record reached the disk, 1 = clean shutdown). The byte offset this
  // lands on is arbitrary — usually mid-record (and, under kGroup,
  // mid-batch), exercising the torn-tail truncation rule.
  double crash_fraction = 0.5;
  // How the run journals. kSync is the PR 3 per-record-fdatasync
  // behavior; kGroup batches the durability point behind early lock
  // release; kRelaxed acknowledges before durability.
  GroupCommitOptions group_commit{DurabilityMode::kSync};
};

struct CrashScenarioResult {
  uint64_t image_bytes = 0;      // journal bytes on disk at full run
  uint64_t crash_offset = 0;     // bytes surviving the crash
  size_t records_total = 0;      // commit records the full run journaled
  size_t syncs_total = 0;        // syncs the full run issued (batches)
  // Records covered by the last sync whose offset <= crash_offset: the
  // transactions that could have been acknowledged before the crash. (A
  // sync with offset > crash_offset cannot have returned before it.)
  size_t acked_records = 0;
  RecoveryReport report;         // what the post-crash scan found
  Status status;                 // recovery outcome (scan + replay)
  bool prefix_of_commit_order = false;  // audit (1) above
  bool state_matches_prefix = false;    // audit (2) above
  bool acked_recovered = false;         // audit (3) above

  // Audit (4), batch atomicity: a multi-object commit record (ExecuteBatch
  // transactions touching >1 object) must be all-or-nothing across its
  // objects after restart. Measured per record against each named object's
  // recovered last_committed_lsn: `partial` counts records some but not
  // all of whose objects reflect them — must be 0 at every crash offset.
  // (Meaningful for workloads without lifecycle churn of the batch ids; an
  // incarnation reset rewinds last_committed_lsn.)
  size_t batch_records_total = 0;      // multi-object records journaled
  size_t batch_records_recovered = 0;  // fully applied at every object
  size_t batch_records_partial = 0;    // applied at a strict subset

  bool ok() const {
    return status.ok() && prefix_of_commit_order && state_matches_prefix &&
           acked_recovered && batch_records_partial == 0;
  }
};

// Runs the full scenario described above.
CrashScenarioResult RunCrashScenario(const SystemFactory& factory,
                                     const TxnBody& body,
                                     const CrashScenarioOptions& options);

// ---------------------------------------------------------------------------
// Serving crash scenario: RunCrashScenario with the ServeFrontend in the
// loop. Submissions arrive as an unpaced burst from several submitter
// threads — the bounded admission queue genuinely fills (and sheds), so
// the crash cut lands at an instant with submissions queued and acks
// outstanding. Completions are acked off the group-commit watermark, so
// the serving ack IS the durability promise the audits check:
//
//   1-4. the RunCrashScenario audits (prefix, state, acked-recovered,
//        batch atomicity) over the coalesced commit records;
//   5.   conservation: the journal's op count equals the ops delivered
//        with OK acks — shed and failed submissions left no trace, acked
//        ones exactly their ops;
//   6.   the cut actually interrupted serving (inflight_at_crash > 0 for
//        any mid-run fraction): unacked records lay past the cut.
// ---------------------------------------------------------------------------

struct ServeCrashOptions {
  size_t requests = 400;          // submissions the burst issues
  size_t submit_threads = 2;      // unpaced submitter threads
  uint64_t seed = 7;
  ServeFrontendOptions frontend;  // size queue_depth < requests to shed
  double crash_fraction = 0.5;
  GroupCommitOptions group_commit{DurabilityMode::kGroup};
};

struct ServeCrashResult {
  // Serving-side accounting (ServeStats snapshot after Drain).
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t shed = 0;
  uint64_t completed_ok = 0;
  uint64_t completed_error = 0;
  uint64_t max_queue_depth = 0;
  uint64_t coalesced_txns = 0;
  // Audit 5: ops journaled vs ops delivered with OK acks.
  uint64_t journal_ops = 0;
  uint64_t completed_ops = 0;
  bool ops_conserved = false;
  // Audit 6: records not fully synced at the cut — serving was mid-flight.
  size_t inflight_at_crash = 0;
  // Audits 1-4 over the cut image.
  CrashScenarioResult crash;

  bool ok() const {
    return crash.ok() && ops_conserved &&
           (crash.crash_offset >= crash.image_bytes ||
            inflight_at_crash > 0);
  }
};

ServeCrashResult RunServeCrashScenario(const SystemFactory& factory,
                                       const RequestFactory& make_request,
                                       const ServeCrashOptions& options);

// ---------------------------------------------------------------------------
// Checkpoint/segment crash scenario: the maintenance-path counterpart of
// RunCrashScenario. A workload first runs against a volatile journal to fix
// the ground-truth commit-record sequence; the harness then replays that
// sequence through a SegmentedFileSink (one append + sync per record — the
// per-record ack point) into a temp directory, mirror-applying each
// acknowledged record into a live replica manager so fuzzy checkpoints of
// the replica carry exact per-object LSNs. Every `checkpoint_every`
// records a maintenance pass runs: capture the anchor, write a checkpoint,
// truncate dead segments. One named crash point (journal_io.h /
// checkpoint.h) is armed; when it fires the simulated machine is dead —
// every later append, checkpoint, and truncation fails, and the remaining
// records are lost. Finally a freshly built system restarts from the
// directory and is audited:
//
//   1. recovery succeeds and lands on exactly the appended prefix — the
//      (checkpoint, tail) pair on disk is consistent at every crash point;
//   2. every recovered object's state equals an independent spec-level
//      replay of that prefix (so in particular 0 acked-but-lost records).
// ---------------------------------------------------------------------------

struct CheckpointCrashOptions {
  DriverOptions driver;
  // Small so the scenario actually rotates (and truncates) segments.
  uint64_t max_segment_bytes = 512;
  // Records between maintenance passes (checkpoint + truncate); 0 picks
  // roughly thirds of the run.
  size_t checkpoint_every = 0;
  // Named crash point to arm (rot.*, trunc.*, ckpt.*); empty = no crash.
  std::string crash_point;
  int replay_threads = 1;
};

struct CheckpointCrashResult {
  size_t records_total = 0;     // ground-truth records the workload produced
  size_t records_appended = 0;  // prefix that reached the disk before death
  size_t acked_records = 0;     // append + sync both returned OK
  bool crash_fired = false;     // the armed point was actually reached
  size_t checkpoints_written = 0;
  size_t truncations = 0;       // maintenance passes that removed segments
  Status status;                // restart outcome
  RestartSummary summary;
  bool recovered_all_appended = false;  // audit (1) above
  bool state_matches_prefix = false;    // audit (2) above

  bool ok() const {
    return status.ok() && recovered_all_appended && state_matches_prefix &&
           acked_records <= records_appended;
  }
};

CheckpointCrashResult RunCheckpointCrashScenario(
    const SystemFactory& factory, const TxnBody& body,
    const CheckpointCrashOptions& options);

// ---------------------------------------------------------------------------
// Store-backend crash scenario: RunCheckpointCrashScenario with the
// persistent object store in the loop. Same three phases (ground-truth
// workload, durable replay with maintenance, restart + audit), but the
// replica manager runs with a LogStructuredStore attached: maintenance
// passes evict cold objects (their state then lives only in the store and
// later mirror-applies fault it back in), checkpoints publish as store
// batches (no monolithic file unless also_write_file), truncation keys off
// the durable store meta anchor, and each pass force-compacts the store's
// oldest segment. One named crash point — the store.* family
// (store/log_store.h) as well as the journal/checkpoint points — is armed
// on a CrashPoints shared by the journal sink, the checkpointer, and the
// store, so once it fires the whole simulated machine is dead. Restart
// opens a fresh store over the surviving segments and recovers through the
// store-preferring RestartFromDir. Audits are the checkpoint scenario's:
//
//   1. recovery lands on exactly the appended prefix — in particular,
//      0 acked-but-lost records at every store crash point;
//   2. every recovered object's state equals the spec-level replay of
//      that prefix (evicted images, checkpoint batches, and the journal
//      tail agree).
// ---------------------------------------------------------------------------

struct StoreCrashOptions {
  DriverOptions driver;
  // Journal segment size (small so truncation actually happens).
  uint64_t max_segment_bytes = 512;
  // Store segment size (small so eviction/checkpoint batches rotate
  // segments and compaction has a victim).
  uint64_t store_segment_bytes = 2048;
  // Records between maintenance passes (checkpoint + truncate + compact);
  // 0 picks roughly thirds of the run.
  size_t checkpoint_every = 0;
  // Records between eviction passes (one object evicted round-robin per
  // pass); 0 disables eviction.
  size_t evict_every = 4;
  // Named crash point to arm (store.*, rot.*, trunc.*, ckpt.*); empty =
  // no crash.
  std::string crash_point;
  int replay_threads = 1;
  // Also write monolithic checkpoint files next to the store batches.
  bool also_write_file = false;
};

struct StoreCrashResult {
  size_t records_total = 0;     // ground-truth records the workload produced
  size_t records_appended = 0;  // prefix that reached the journal before death
  size_t acked_records = 0;     // append + sync both returned OK
  bool crash_fired = false;     // the armed point was actually reached
  size_t checkpoints_written = 0;
  size_t truncations = 0;       // maintenance passes that removed segments
  size_t evictions = 0;         // objects actually evicted to the store
  uint64_t store_compactions = 0;  // store segment rewrites completed
  Status status;                // restart outcome
  RestartSummary summary;
  bool recovered_all_appended = false;  // audit (1) above
  bool state_matches_prefix = false;    // audit (2) above

  bool ok() const {
    return status.ok() && recovered_all_appended && state_matches_prefix &&
           acked_records <= records_appended;
  }
};

StoreCrashResult RunStoreCrashScenario(const SystemFactory& factory,
                                       const TxnBody& body,
                                       const StoreCrashOptions& options);

}  // namespace ccr

#endif  // CCR_SIM_CRASH_HARNESS_H_
