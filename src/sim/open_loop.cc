// Copyright 2026 The ccr Authors.

#include "sim/open_loop.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/macros.h"

namespace ccr {
namespace {

using Clock = std::chrono::steady_clock;

// Completion-side aggregate. Completions arrive on batcher/flusher
// threads; one mutex is fine because bucket Record is a few array ops.
struct Aggregate {
  std::mutex mu;
  std::condition_variable done_cv;
  size_t completed_ok = 0;
  size_t completed_error = 0;
  uint64_t completed_ops = 0;
  size_t outstanding = 0;  // admitted, not yet completed
  bool dispatched_all = false;
  Clock::time_point last_completion;
  LatencyRecorder latency{LatencyMode::kBuckets};
};

}  // namespace

OpenLoopResult RunOpenLoop(ServeFrontend* frontend,
                           const RequestFactory& make_request,
                           const OpenLoopOptions& options) {
  CCR_CHECK(frontend != nullptr);
  CCR_CHECK(options.offered_rps > 0);
  OpenLoopResult result;
  result.offered_rps = options.offered_rps;
  if (options.requests == 0) return result;

  Aggregate agg;
  Random rng(options.seed);
  const Clock::time_point start = Clock::now();
  double next_arrival_s = 0;  // intended arrival, seconds after start

  for (size_t i = 0; i < options.requests; ++i) {
    // Exponential inter-arrival gap: -ln(1-U)/rate. The schedule is fixed
    // up front by the seed — the engine cannot slow the arrival process.
    const double gap =
        -std::log1p(-rng.NextDouble()) / options.offered_rps;
    next_arrival_s += gap;
    const Clock::time_point intended =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(next_arrival_s));
    std::this_thread::sleep_until(intended);  // no-op once we fall behind

    std::vector<BatchOp> ops = make_request(i, &rng);
    {
      std::lock_guard<std::mutex> lock(agg.mu);
      ++agg.outstanding;
    }
    const Status admitted = frontend->SubmitAsync(
        std::move(ops),
        [&agg, intended](const Status& s, std::vector<Value> values) {
          // Latency from the INTENDED arrival: dispatcher lag and queueing
          // delay both count against the system, never in its favor.
          const Clock::time_point now = Clock::now();
          const uint64_t us = static_cast<uint64_t>(std::max<int64_t>(
              0, std::chrono::duration_cast<std::chrono::microseconds>(
                     now - intended)
                     .count()));
          std::lock_guard<std::mutex> lock(agg.mu);
          if (s.ok()) {
            ++agg.completed_ok;
            agg.completed_ops += values.size();
            agg.latency.Record(us);
          } else {
            ++agg.completed_error;
          }
          agg.last_completion = now;
          CCR_CHECK(agg.outstanding > 0);
          --agg.outstanding;
          if (agg.dispatched_all && agg.outstanding == 0) {
            // Notify under the mutex: the waiter owns `agg`'s storage and
            // frees it the moment it wakes — an unlocked notify could touch
            // a dead condition_variable.
            agg.done_cv.notify_all();
          }
        });
    ++result.submitted;
    if (!admitted.ok()) {
      std::lock_guard<std::mutex> lock(agg.mu);
      --agg.outstanding;  // completion will never fire
      if (admitted.code() == StatusCode::kResourceExhausted) {
        ++result.shed;
      } else {
        ++result.completed_error;
      }
    }
  }

  // Wait for the tail: every admitted submission completes (acks ride the
  // pipeline flusher, so this finishes within its linger).
  Clock::time_point last;
  {
    std::unique_lock<std::mutex> lock(agg.mu);
    agg.dispatched_all = true;
    agg.done_cv.wait(lock, [&] { return agg.outstanding == 0; });
    result.completed_ok = agg.completed_ok;
    result.completed_error += agg.completed_error;
    result.completed_ops = agg.completed_ops;
    result.latency.Merge(agg.latency);
    last = agg.completed_ok + agg.completed_error > 0 ? agg.last_completion
                                                      : Clock::now();
  }
  result.duration_s =
      std::chrono::duration<double>(last - start).count();
  if (result.duration_s > 0) {
    result.achieved_rps =
        static_cast<double>(result.completed_ok) / result.duration_s;
  }
  result.p50_us = result.latency.Percentile(50);
  result.p99_us = result.latency.Percentile(99);
  result.max_us = result.latency.Max();
  result.mean_us = result.latency.Mean();
  return result;
}

}  // namespace ccr
