// Copyright 2026 The ccr Authors.

#include "sim/multi_generator.h"

#include <set>

namespace ccr {

namespace {

// Per-transaction bookkeeping for the multi-object scheduler.
struct TxnState {
  TxnId id;
  size_t ops_done = 0;
  bool finished = false;
  // Index of the object holding this transaction's pending invocation, or
  // SIZE_MAX when none.
  size_t pending_at = SIZE_MAX;
  std::set<size_t> touched;
};

}  // namespace

History GenerateMultiSchedule(const std::vector<ObjectSetup>& objects,
                              Random* rng, const ScheduleOptions& options) {
  CCR_CHECK(!objects.empty());
  for (const ObjectSetup& setup : objects) {
    CCR_CHECK(setup.object != nullptr && !setup.pool.empty());
  }

  History global;
  auto mirror = [&global](const Event& e) {
    Status s = global.Append(e);
    CCR_CHECK_MSG(s.ok(), "global history broke well-formedness: %s",
                  s.ToString().c_str());
  };

  std::vector<TxnState> txns;
  txns.reserve(options.num_txns);
  for (size_t i = 0; i < options.num_txns; ++i) {
    txns.push_back(TxnState{static_cast<TxnId>(i + 1), 0, false, SIZE_MAX,
                            {}});
  }

  auto commit_everywhere = [&](TxnState& t) {
    for (size_t idx : t.touched) {
      CCR_CHECK(objects[idx].object->Commit(t.id).ok());
      mirror(Event::Commit(t.id, objects[idx].object->id()));
    }
    // A transaction that touched nothing still commits "at" the first
    // object so the global history records its fate.
    if (t.touched.empty()) {
      CCR_CHECK(objects[0].object->Commit(t.id).ok());
      mirror(Event::Commit(t.id, objects[0].object->id()));
    }
    t.finished = true;
  };
  auto abort_everywhere = [&](TxnState& t) {
    for (size_t idx : t.touched) {
      CCR_CHECK(objects[idx].object->Abort(t.id).ok());
      mirror(Event::Abort(t.id, objects[idx].object->id()));
    }
    if (t.touched.empty()) {
      CCR_CHECK(objects[0].object->Abort(t.id).ok());
      mirror(Event::Abort(t.id, objects[0].object->id()));
    }
    t.finished = true;
  };

  size_t live = txns.size();
  for (size_t step = 0; step < options.max_steps && live > 0; ++step) {
    TxnState& t = txns[rng->Uniform(txns.size())];
    if (t.finished) continue;

    if (t.pending_at != SIZE_MAX) {
      IdealObject* obj = objects[t.pending_at].object;
      StatusOr<Value> r = obj->Respond(t.id);
      if (r.ok()) {
        mirror(Event::Response(t.id, obj->id(), *r));
        t.pending_at = SIZE_MAX;
        ++t.ops_done;
      } else if (r.status().code() == StatusCode::kIllegalState) {
        abort_everywhere(t);
        --live;
      }
      // kConflict: delayed; retried on a later step.
      continue;
    }

    if (t.ops_done >= options.max_ops_per_txn ||
        (t.ops_done > 0 && rng->Bernoulli(0.25))) {
      if (rng->Bernoulli(options.abort_prob)) {
        abort_everywhere(t);
      } else {
        commit_everywhere(t);
      }
      --live;
      continue;
    }

    const size_t idx = rng->Uniform(objects.size());
    const ObjectSetup& setup = objects[idx];
    const Invocation& inv = setup.pool[rng->Uniform(setup.pool.size())];
    CCR_CHECK(setup.object->Invoke(t.id, inv).ok());
    mirror(Event::Invoke(t.id, inv));
    t.pending_at = idx;
    t.touched.insert(idx);
  }

  // Drain.
  for (TxnState& t : txns) {
    if (t.finished) continue;
    if (t.pending_at != SIZE_MAX) {
      IdealObject* obj = objects[t.pending_at].object;
      StatusOr<Value> r = obj->Respond(t.id);
      if (r.ok()) {
        mirror(Event::Response(t.id, obj->id(), *r));
        t.pending_at = SIZE_MAX;
      } else {
        abort_everywhere(t);
        continue;
      }
    }
    if (rng->Bernoulli(options.leave_active_prob)) {
      t.finished = true;  // left active
      continue;
    }
    if (rng->Bernoulli(options.abort_prob)) {
      abort_everywhere(t);
    } else {
      commit_everywhere(t);
    }
  }
  return global;
}

}  // namespace ccr
