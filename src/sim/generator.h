// Copyright 2026 The ccr Authors.
//
// Random schedule generation through the reference object
// I(X, Spec, View, Conflict). Every history produced is by construction in
// the automaton's language L(I(...)), which is exactly what Theorems 9/10
// quantify over — so feeding these histories to the dynamic-atomicity
// checker is a direct experimental test of the theorems' "if" directions.

#ifndef CCR_SIM_GENERATOR_H_
#define CCR_SIM_GENERATOR_H_

#include <vector>

#include "common/random.h"
#include "core/adt.h"
#include "core/ideal_object.h"

namespace ccr {

struct ScheduleOptions {
  size_t num_txns = 6;         // logical transactions to drive
  size_t max_ops_per_txn = 4;  // operations each tries to execute
  double abort_prob = 0.15;    // chance a transaction aborts instead of
                               // committing
  size_t max_steps = 400;      // scheduler step budget (progress bound)
  // Chance that a drained transaction is left active (neither committed nor
  // aborted) so histories exercise *online* dynamic atomicity with
  // non-trivial commit sets.
  double leave_active_prob = 0.2;
};

// The distinct invocations of an ADT's universe (results stripped) — the
// invocation pool the generator draws from.
std::vector<Invocation> UniverseInvocations(const Adt& adt);

// Drives random transactions through `object` and returns its history.
// Responses blocked by conflicts are simply retried later or given up on —
// like a pessimistic scheduler delaying conflicting operations.
History GenerateSchedule(IdealObject* object,
                         const std::vector<Invocation>& pool, Random* rng,
                         const ScheduleOptions& options = {});

}  // namespace ccr

#endif  // CCR_SIM_GENERATOR_H_
