// Copyright 2026 The ccr Authors.

#include "sim/stats.h"

#include <algorithm>

namespace ccr {

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

uint64_t LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) return 0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  const size_t idx = static_cast<size_t>(p / 100.0 * (samples_.size() - 1));
  return samples_[idx];
}

double LatencyRecorder::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (uint64_t s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

}  // namespace ccr
