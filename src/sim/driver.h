// Copyright 2026 The ccr Authors.
//
// Multithreaded workload driver over the transaction engine: runs a
// user-supplied transaction body from N worker threads and reports
// throughput, retry counts, and latency percentiles. The benches use this
// for every PERF-* experiment.

#ifndef CCR_SIM_DRIVER_H_
#define CCR_SIM_DRIVER_H_

#include <functional>
#include <string>

#include "common/random.h"
#include "sim/stats.h"
#include "txn/txn_manager.h"

namespace ccr {

struct DriverOptions {
  int threads = 4;
  int txns_per_thread = 500;
  uint64_t seed = 42;
};

struct DriverResult {
  double seconds = 0;
  uint64_t committed = 0;
  uint64_t retries = 0;
  double throughput = 0;  // committed transactions per second
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  double mean_us = 0;

  // Contention observability, aggregated over the manager's objects for
  // this run (deltas for the counters; high-water mark for the depth).
  uint64_t waits = 0;
  uint64_t wakeups = 0;
  uint64_t spurious_wakeups = 0;
  uint64_t kill_wakeups = 0;
  uint64_t max_queue_depth = 0;
  uint64_t wait_p99_us = 0;  // p99 blocked time per waiting Execute

  // Recording-layer load for this run: events appended to the manager's
  // history recorder (0 when record_history is off).
  uint64_t events_recorded = 0;

  // Group-commit pipeline activity for this run (all zero when no pipeline
  // is attached to the manager). Deltas over the run for the counters;
  // records/batch and the ack percentiles are the pipeline's cumulative
  // view, which benches reset by using a fresh pipeline per run.
  uint64_t gc_records = 0;   // commit records flushed to the sink
  uint64_t gc_batches = 0;   // flush cycles (== records in kSync mode)
  uint64_t gc_syncs = 0;     // fdatasync (sink Sync) calls issued
  double gc_records_per_batch = 0;
  uint64_t ack_p50_us = 0;   // commit-to-acknowledgment latency
  uint64_t ack_p99_us = 0;

  std::string ToString() const;
};

// The transaction body: executes operations via `txn` against the manager's
// objects. `rng` is a per-thread deterministic stream. Return OK to commit;
// a retryable status aborts and retries; any other status aborts and stops
// that worker's current transaction.
using TxnBody = std::function<Status(TxnManager* manager, Transaction* txn,
                                     Random* rng)>;

// Runs `body` options.txns_per_thread times on each of options.threads
// worker threads and reports aggregate results.
DriverResult RunWorkload(TxnManager* manager, const TxnBody& body,
                         const DriverOptions& options = {});

}  // namespace ccr

#endif  // CCR_SIM_DRIVER_H_
