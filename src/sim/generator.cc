// Copyright 2026 The ccr Authors.

#include "sim/generator.h"

#include <map>

namespace ccr {

std::vector<Invocation> UniverseInvocations(const Adt& adt) {
  std::vector<Invocation> pool;
  for (const Operation& op : adt.Universe()) {
    bool seen = false;
    for (const Invocation& inv : pool) {
      if (inv == op.inv()) {
        seen = true;
        break;
      }
    }
    if (!seen) pool.push_back(op.inv());
  }
  return pool;
}

History GenerateSchedule(IdealObject* object,
                         const std::vector<Invocation>& pool, Random* rng,
                         const ScheduleOptions& options) {
  CCR_CHECK(!pool.empty());

  struct TxnState {
    TxnId id;
    size_t ops_done = 0;
    bool pending = false;
    bool finished = false;
  };
  std::vector<TxnState> txns;
  txns.reserve(options.num_txns);
  for (size_t i = 0; i < options.num_txns; ++i) {
    txns.push_back(TxnState{static_cast<TxnId>(i + 1)});
  }

  size_t live = txns.size();
  for (size_t step = 0; step < options.max_steps && live > 0; ++step) {
    TxnState& t = txns[rng->Uniform(txns.size())];
    if (t.finished) continue;

    if (t.pending) {
      // Try to respond; a conflict just means "delayed" — try again later.
      StatusOr<Value> r = object->Respond(t.id);
      if (r.ok()) {
        t.pending = false;
        ++t.ops_done;
      } else if (r.status().code() == StatusCode::kIllegalState) {
        // No legal result in this view (partial op currently disabled, or a
        // degenerate invocation): give up on this transaction's invocation
        // by aborting the whole transaction.
        CCR_CHECK(object->Abort(t.id).ok());
        t.finished = true;
        --live;
      }
      continue;
    }

    if (t.ops_done >= options.max_ops_per_txn ||
        (t.ops_done > 0 && rng->Bernoulli(0.25))) {
      // Finish: commit or abort.
      if (rng->Bernoulli(options.abort_prob)) {
        CCR_CHECK(object->Abort(t.id).ok());
      } else {
        CCR_CHECK(object->Commit(t.id).ok());
      }
      t.finished = true;
      --live;
      continue;
    }

    const Invocation& inv = pool[rng->Uniform(pool.size())];
    CCR_CHECK(object->Invoke(t.id, inv).ok());
    t.pending = true;
  }

  // Drain: finish the remaining transactions (any still-blocked one is
  // aborted), occasionally leaving one active so the resulting history has
  // a non-trivial commit-set structure.
  for (TxnState& t : txns) {
    if (t.finished) continue;
    if (t.pending) {
      StatusOr<Value> r = object->Respond(t.id);
      if (!r.ok()) {
        CCR_CHECK(object->Abort(t.id).ok());
        t.finished = true;
        continue;
      }
    }
    if (rng->Bernoulli(options.leave_active_prob)) {
      t.finished = true;  // left active in the history
      continue;
    }
    if (rng->Bernoulli(options.abort_prob)) {
      CCR_CHECK(object->Abort(t.id).ok());
    } else {
      CCR_CHECK(object->Commit(t.id).ok());
    }
    t.finished = true;
  }
  return object->history();
}

}  // namespace ccr
