// Copyright 2026 The ccr Authors.

#include "sim/driver.h"

#include <chrono>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "txn/group_commit.h"

namespace ccr {

std::string DriverResult::ToString() const {
  std::string out = StrFormat(
      "committed=%llu retries=%llu throughput=%.0f txn/s "
      "p50=%lluus p99=%lluus mean=%.1fus "
      "waits=%llu wakeups=%llu spurious=%llu killwakes=%llu maxq=%llu "
      "waitp99=%lluus events=%llu",
      static_cast<unsigned long long>(committed),
      static_cast<unsigned long long>(retries), throughput,
      static_cast<unsigned long long>(p50_us),
      static_cast<unsigned long long>(p99_us), mean_us,
      static_cast<unsigned long long>(waits),
      static_cast<unsigned long long>(wakeups),
      static_cast<unsigned long long>(spurious_wakeups),
      static_cast<unsigned long long>(kill_wakeups),
      static_cast<unsigned long long>(max_queue_depth),
      static_cast<unsigned long long>(wait_p99_us),
      static_cast<unsigned long long>(events_recorded));
  if (gc_syncs > 0 || gc_records > 0) {
    out += StrFormat(
        " gcrecords=%llu gcbatches=%llu gcsyncs=%llu recs/batch=%.1f "
        "ackp50=%lluus ackp99=%lluus",
        static_cast<unsigned long long>(gc_records),
        static_cast<unsigned long long>(gc_batches),
        static_cast<unsigned long long>(gc_syncs), gc_records_per_batch,
        static_cast<unsigned long long>(ack_p50_us),
        static_cast<unsigned long long>(ack_p99_us));
  }
  return out;
}

DriverResult RunWorkload(TxnManager* manager, const TxnBody& body,
                         const DriverOptions& options) {
  std::vector<LatencyRecorder> recorders(options.threads);
  std::vector<std::thread> workers;
  workers.reserve(options.threads);

  const uint64_t retries_before = manager->stats().retries;
  const uint64_t events_before = manager->recorder_stats().events;
  const ObjectStats obj_before = manager->AggregateObjectStats();
  GroupCommitStats gc_before;
  if (manager->commit_pipeline() != nullptr) {
    gc_before = manager->commit_pipeline()->stats();
  }
  const auto start = std::chrono::steady_clock::now();
  for (int w = 0; w < options.threads; ++w) {
    workers.emplace_back([&, w] {
      Random rng(options.seed * 1000003 + static_cast<uint64_t>(w));
      LatencyRecorder& lat = recorders[w];
      for (int i = 0; i < options.txns_per_thread; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        Status s = manager->RunTransaction([&](Transaction* txn) {
          return body(manager, txn, &rng);
        });
        // kAborted is a legitimate outcome for bodies that inject aborts;
        // anything else non-OK is a workload bug.
        CCR_CHECK_MSG(s.ok() || s.code() == StatusCode::kAborted,
                      "workload transaction failed: %s",
                      s.ToString().c_str());
        const auto t1 = std::chrono::steady_clock::now();
        lat.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count()));
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const auto end = std::chrono::steady_clock::now();

  LatencyRecorder merged;
  for (const LatencyRecorder& r : recorders) merged.Merge(r);

  DriverResult result;
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  result.committed = static_cast<uint64_t>(options.threads) *
                     static_cast<uint64_t>(options.txns_per_thread);
  result.retries = manager->stats().retries - retries_before;
  result.throughput =
      result.seconds > 0 ? result.committed / result.seconds : 0;
  result.p50_us = merged.Percentile(50);
  result.p99_us = merged.Percentile(99);
  result.mean_us = merged.Mean();

  const ObjectStats obj_after = manager->AggregateObjectStats();
  result.waits = obj_after.waits - obj_before.waits;
  result.wakeups = obj_after.wakeups - obj_before.wakeups;
  result.spurious_wakeups =
      obj_after.spurious_wakeups - obj_before.spurious_wakeups;
  result.kill_wakeups = obj_after.kill_wakeups - obj_before.kill_wakeups;
  result.max_queue_depth = obj_after.max_queue_depth;
  result.wait_p99_us = obj_after.wait_time_us.Percentile(99);
  result.events_recorded = manager->recorder_stats().events - events_before;
  if (GroupCommitPipeline* pipeline = manager->commit_pipeline()) {
    const GroupCommitStats gc_after = pipeline->stats();
    result.gc_records = gc_after.records_flushed - gc_before.records_flushed;
    result.gc_batches = gc_after.batches - gc_before.batches;
    result.gc_syncs = gc_after.syncs - gc_before.syncs;
    result.gc_records_per_batch =
        result.gc_batches > 0
            ? static_cast<double>(result.gc_records) / result.gc_batches
            : 0;
    // Percentiles are over the pipeline's lifetime (LatencyRecorder has no
    // delta); benches use one pipeline per run, so this is the run's view.
    result.ack_p50_us = gc_after.ack_latency_us.Percentile(50);
    result.ack_p99_us = gc_after.ack_latency_us.Percentile(99);
  }
  return result;
}

}  // namespace ccr
