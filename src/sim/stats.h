// Copyright 2026 The ccr Authors.
//
// Historical location of LatencyRecorder; the class moved to
// common/latency_recorder.h so the transaction engine can record per-object
// lock-wait times without a sim dependency. This shim keeps existing
// includes working.

#ifndef CCR_SIM_STATS_H_
#define CCR_SIM_STATS_H_

#include "common/latency_recorder.h"

#endif  // CCR_SIM_STATS_H_
