// Copyright 2026 The ccr Authors.
//
// Latency/throughput accumulators for the workload driver.

#ifndef CCR_SIM_STATS_H_
#define CCR_SIM_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccr {

// Collects microsecond latencies (single-threaded; the driver merges one
// recorder per worker).
class LatencyRecorder {
 public:
  void Record(uint64_t micros) {
    samples_.push_back(micros);
    sorted_ = false;
  }

  void Merge(const LatencyRecorder& other);

  size_t count() const { return samples_.size(); }

  // The p-th percentile (p in [0, 100]) of the recorded samples; 0 if empty.
  uint64_t Percentile(double p) const;

  double Mean() const;

 private:
  mutable std::vector<uint64_t> samples_;
  mutable bool sorted_ = false;
};

}  // namespace ccr

#endif  // CCR_SIM_STATS_H_
