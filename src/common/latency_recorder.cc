// Copyright 2026 The ccr Authors.

#include "common/latency_recorder.h"

#include <algorithm>
#include <cmath>

namespace ccr {

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

uint64_t LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) return 0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  // Nearest rank: ceil(p/100 * N), 1-based. Truncating instead (the old
  // floor-index form) biases every percentile low — e.g. p50 of two samples
  // truncated to the minimum.
  const double rank = std::ceil(p / 100.0 * static_cast<double>(
                                                samples_.size()));
  size_t idx = static_cast<size_t>(rank);
  if (idx < 1) idx = 1;
  if (idx > samples_.size()) idx = samples_.size();
  return samples_[idx - 1];
}

double LatencyRecorder::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (uint64_t s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

}  // namespace ccr
