// Copyright 2026 The ccr Authors.

#include "common/latency_recorder.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/macros.h"

namespace ccr {

size_t LatencyRecorder::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  // Row = floor(log2(value)) normalized so row 1 starts at kSubBuckets; the
  // sub-bucket is the kSubBucketBits bits after the leading one. Buckets are
  // contiguous across the row boundary: value kSubBuckets-1 is index
  // kSubBuckets-1, value kSubBuckets is index kSubBuckets.
  const int e = 63 - std::countl_zero(value);  // >= kSubBucketBits
  const int shift = e - kSubBucketBits;
  const size_t row = static_cast<size_t>(shift) + 1;
  const size_t sub =
      static_cast<size_t>((value >> shift) & (kSubBuckets - 1));
  return row * static_cast<size_t>(kSubBuckets) + sub;
}

uint64_t LatencyRecorder::BucketUpperBound(size_t index) {
  if (index < kSubBuckets) return static_cast<uint64_t>(index);
  const size_t row = index / kSubBuckets;
  const uint64_t sub = static_cast<uint64_t>(index % kSubBuckets);
  const int shift = static_cast<int>(row) - 1;
  const uint64_t lower = (kSubBuckets + sub) << shift;
  return lower + ((1ull << shift) - 1);
}

void LatencyRecorder::Record(uint64_t micros) {
  if (count_ == 0) {
    min_ = micros;
    max_ = micros;
  } else {
    min_ = std::min(min_, micros);
    max_ = std::max(max_, micros);
  }
  ++count_;
  sum_ += static_cast<double>(micros);
  if (mode_ == LatencyMode::kExact) {
    samples_.push_back(micros);
    sorted_ = false;
    return;
  }
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  ++buckets_[BucketIndex(micros)];
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  if (other.count_ == 0) return;
  if (other.mode_ == LatencyMode::kExact) {
    // Re-record so min/max/sum/buckets stay coherent in either destination
    // mode.
    for (uint64_t s : other.samples_) Record(s);
    return;
  }
  CCR_CHECK_MSG(mode_ == LatencyMode::kBuckets,
                "cannot merge a bucketed LatencyRecorder into an exact one");
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

uint64_t LatencyRecorder::Percentile(double p) const {
  if (count_ == 0) return 0;
  // Nearest rank: ceil(p/100 * N), 1-based. Truncating instead (the old
  // floor-index form) biases every percentile low — e.g. p50 of two samples
  // truncated to the minimum.
  const double raw = std::ceil(p / 100.0 * static_cast<double>(count_));
  size_t rank = raw < 1.0 ? 1 : static_cast<size_t>(raw);
  if (rank > count_) rank = count_;
  if (mode_ == LatencyMode::kExact) {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    return samples_[rank - 1];
  }
  // Walk the histogram to the bucket holding `rank` and report its upper
  // bound: never below the exact nearest-rank value, at most one bucket
  // width (~2^-kSubBucketBits relative) above it. Clamping to the observed
  // extremes keeps p0 == Min and p100 == Max exact.
  size_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::clamp(BucketUpperBound(i), min_, max_);
    }
  }
  return max_;
}

double LatencyRecorder::Mean() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

}  // namespace ccr
