// Copyright 2026 The ccr Authors.

#include "common/temp_path.h"

#include <cstdlib>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace ccr {

std::string TempDirRoot() {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr && *dir != '\0' ? dir : "/tmp");
}

std::string MakeTempDir(std::string_view prefix) {
  std::string templ = TempDirRoot();
  templ += "/";
  templ += prefix;
  templ += "XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
#ifndef _WIN32
  if (::mkdtemp(buf.data()) != nullptr) return std::string(buf.data());
#endif
  return std::string();
}

}  // namespace ccr
