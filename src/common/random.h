// Copyright 2026 The ccr Authors.
//
// Deterministic pseudo-random utilities for workloads and property tests.
// A seeded xorshift generator keeps experiments reproducible without the
// weight (or the platform variance) of <random> engines.

#ifndef CCR_COMMON_RANDOM_H_
#define CCR_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace ccr {

// xorshift128+ generator. Not cryptographic; fast and reproducible.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  // Uniform in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Uniform double in [0, 1).
  double NextDouble();

  // Picks an index according to `weights` (non-negative, not all zero).
  size_t Weighted(const std::vector<double>& weights);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

// Zipfian distribution over [0, n): item i drawn with probability
// proportional to 1/(i+1)^theta. theta == 0 degenerates to uniform. Used for
// hot-spot object selection in workloads.
class Zipfian {
 public:
  Zipfian(uint64_t n, double theta);

  uint64_t Sample(Random* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cumulative probabilities, size n
};

}  // namespace ccr

#endif  // CCR_COMMON_RANDOM_H_
