// Copyright 2026 The ccr Authors.

#include "common/crc32c.h"

namespace ccr {
namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli polynomial

struct Tables {
  uint32_t t[8][256];

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xff];
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Tables& tab = tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Byte-at-a-time until 8-byte alignment would not help correctness, but
  // slice-by-8 wants 8 bytes per step regardless of alignment (loads are
  // assembled byte-wise, so this stays UB-free on any platform).
  while (n >= 8) {
    const uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                               (static_cast<uint32_t>(p[1]) << 8) |
                               (static_cast<uint32_t>(p[2]) << 16) |
                               (static_cast<uint32_t>(p[3]) << 24));
    crc = tab.t[7][lo & 0xff] ^ tab.t[6][(lo >> 8) & 0xff] ^
          tab.t[5][(lo >> 16) & 0xff] ^ tab.t[4][lo >> 24] ^
          tab.t[3][p[4]] ^ tab.t[2][p[5]] ^ tab.t[1][p[6]] ^ tab.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xff];
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace ccr
