// Copyright 2026 The ccr Authors.

#include "common/random.h"

#include <cmath>

namespace ccr {

Random::Random(uint64_t seed) {
  // SplitMix64 seeding so that nearby seeds yield unrelated streams.
  uint64_t z = seed + 0x9e3779b97f4a7c15ull;
  auto mix = [](uint64_t v) {
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
    return v ^ (v >> 31);
  };
  s0_ = mix(z);
  z += 0x9e3779b97f4a7c15ull;
  s1_ = mix(z);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Random::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Random::Uniform(uint64_t n) {
  CCR_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias for large n.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return v % n;
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  CCR_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Random::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

size_t Random::Weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    CCR_CHECK(w >= 0.0);
    total += w;
  }
  CCR_CHECK(total > 0.0);
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

Zipfian::Zipfian(uint64_t n, double theta) : n_(n), theta_(theta) {
  CCR_CHECK(n > 0);
  CCR_CHECK(theta >= 0.0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

uint64_t Zipfian::Sample(Random* rng) const {
  const double r = rng->NextDouble();
  // Binary search the CDF.
  uint64_t lo = 0;
  uint64_t hi = n_ - 1;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < r) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace ccr
