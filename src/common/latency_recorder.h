// Copyright 2026 The ccr Authors.
//
// Latency accumulator shared by the workload driver (per-worker transaction
// latencies) and the transaction engine (per-object lock-wait times). Lives
// in common/ so ccr_txn can use it without depending on ccr_sim.

#ifndef CCR_COMMON_LATENCY_RECORDER_H_
#define CCR_COMMON_LATENCY_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccr {

// Collects microsecond latencies. Not thread-safe: each writer owns a
// recorder and the reader merges them (the driver merges one per worker;
// AtomicObject guards its recorder with the object mutex).
class LatencyRecorder {
 public:
  void Record(uint64_t micros) {
    samples_.push_back(micros);
    sorted_ = false;
  }

  void Merge(const LatencyRecorder& other);

  size_t count() const { return samples_.size(); }

  // The p-th percentile (p in [0, 100]) of the recorded samples, using the
  // nearest-rank definition: the smallest sample s such that at least p% of
  // the samples are <= s. 0 if empty.
  uint64_t Percentile(double p) const;

  double Mean() const;

 private:
  mutable std::vector<uint64_t> samples_;
  mutable bool sorted_ = false;
};

}  // namespace ccr

#endif  // CCR_COMMON_LATENCY_RECORDER_H_
