// Copyright 2026 The ccr Authors.
//
// Latency accumulator shared by the workload driver (per-worker transaction
// latencies) and the transaction engine (per-object lock-wait times). Lives
// in common/ so ccr_txn can use it without depending on ccr_sim.

#ifndef CCR_COMMON_LATENCY_RECORDER_H_
#define CCR_COMMON_LATENCY_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccr {

// How a LatencyRecorder stores its samples.
//
//   kExact   — every sample retained; percentiles are exact nearest-rank.
//              Memory grows with the sample count: fine for closed-loop
//              runs (bounded txns/thread), the default everywhere.
//   kBuckets — bounded HDR-style log-linear histogram: values < kSubBuckets
//              get their own bucket (exact), larger values share buckets of
//              relative width 2^-kSubBucketBits (~3.1%). Fixed footprint
//              (~15 KB) regardless of sample count — built for multi-
//              million-sample open-loop sweeps. Percentiles return the
//              bucket's upper bound (clamped to the observed min/max, so
//              p0/p100 stay exact): never below the exact nearest-rank
//              value and at most ~1/32 above it.
enum class LatencyMode {
  kExact,
  kBuckets,
};

// Collects microsecond latencies. Not thread-safe: each writer owns a
// recorder and the reader merges them (the driver merges one per worker;
// AtomicObject guards its recorder with the object mutex).
class LatencyRecorder {
 public:
  LatencyRecorder() = default;
  explicit LatencyRecorder(LatencyMode mode) : mode_(mode) {}

  LatencyMode mode() const { return mode_; }

  void Record(uint64_t micros);

  // Merges `other` into this. An exact source merges into either mode (its
  // samples are re-recorded); a bucketed source only merges into a bucketed
  // destination (spreading buckets back into samples would fabricate data).
  void Merge(const LatencyRecorder& other);

  size_t count() const { return count_; }

  // The p-th percentile (p in [0, 100]) of the recorded samples. kExact:
  // nearest-rank — the smallest sample s such that at least p% of the
  // samples are <= s. kBuckets: the upper bound of the bucket holding that
  // rank, clamped to [min, max] observed. 0 if empty.
  uint64_t Percentile(double p) const;

  // Exact in both modes (a running sum is kept alongside the buckets).
  double Mean() const;

  uint64_t Min() const { return count_ == 0 ? 0 : min_; }
  uint64_t Max() const { return count_ == 0 ? 0 : max_; }

  // Log-linear bucket geometry (kBuckets). 32 sub-buckets per power of two
  // caps the relative bucket width at 2^-5; 60 rows cover the full uint64
  // range. BucketIndex/BucketUpperBound are exposed for the agreement test.
  static constexpr int kSubBucketBits = 5;
  static constexpr uint64_t kSubBuckets = 1ull << kSubBucketBits;
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketUpperBound(size_t index);
  static constexpr size_t kNumBuckets =
      (64 - kSubBucketBits + 1) * kSubBuckets;  // 1920

 private:
  LatencyMode mode_ = LatencyMode::kExact;
  size_t count_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  double sum_ = 0.0;
  mutable std::vector<uint64_t> samples_;  // kExact
  std::vector<uint64_t> buckets_;          // kBuckets, lazily sized
  mutable bool sorted_ = false;
};

}  // namespace ccr

#endif  // CCR_COMMON_LATENCY_RECORDER_H_
