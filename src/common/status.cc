// Copyright 2026 The ccr Authors.

#include "common/status.h"

namespace ccr {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIllegalState:
      return "IllegalState";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ccr
