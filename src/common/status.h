// Copyright 2026 The ccr Authors.
//
// Lightweight Status / StatusOr error model (RocksDB idiom). The library does
// not throw exceptions across API boundaries; every fallible operation
// returns a Status or StatusOr<T>.

#ifndef CCR_COMMON_STATUS_H_
#define CCR_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/macros.h"

namespace ccr {

// Error taxonomy for the transaction framework. `kConflict` and `kDeadlock`
// are retryable by re-running the transaction; the rest indicate misuse or a
// permanent condition.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed request (bad event, unknown operation, ...)
  kNotFound,          // missing object / transaction
  kIllegalState,      // violates well-formedness or object protocol
  kConflict,          // blocked by a concurrency conflict
  kDeadlock,          // chosen as a deadlock victim
  kAborted,           // transaction aborted (by user or system)
  kTimedOut,          // lock wait timed out
  kNotSupported,      // optional capability (e.g. inverse ops) unavailable
  kUnavailable,       // component is gone (e.g. simulated crash fired)
  kInternal,          // invariant failure surfaced as an error
  kResourceExhausted, // admission control shed the request (queue full)
};

// Human-readable name of a status code ("Conflict", "Deadlock", ...).
const char* StatusCodeName(StatusCode code);

// Value-semantic status: a code plus an optional message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IllegalState(std::string msg) {
    return Status(StatusCode::kIllegalState, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // True for outcomes a transaction runner should retry (conflict victims).
  // kResourceExhausted is deliberately NOT retryable: a shed request retried
  // immediately just re-saturates the queue; the client must back off.
  bool IsRetryable() const {
    return code_ == StatusCode::kConflict || code_ == StatusCode::kDeadlock ||
           code_ == StatusCode::kTimedOut;
  }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A Status or a value of type T. Accessing the value of a non-OK StatusOr is
// a checked fatal error.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    CCR_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CCR_CHECK_MSG(ok(), "value() on error StatusOr: %s",
                  status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    CCR_CHECK_MSG(ok(), "value() on error StatusOr: %s",
                  status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    CCR_CHECK_MSG(ok(), "value() on error StatusOr: %s",
                  status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK Status from an expression.
#define CCR_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::ccr::Status _ccr_status = (expr);           \
    if (!_ccr_status.ok()) return _ccr_status;    \
  } while (0)

}  // namespace ccr

#endif  // CCR_COMMON_STATUS_H_
