// Copyright 2026 The ccr Authors.
//
// Small string helpers: printf-style formatting, joining, and a fixed-width
// ASCII table printer used by the benchmark binaries to render the paper's
// figures.

#ifndef CCR_COMMON_STRING_UTIL_H_
#define CCR_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace ccr {

// printf into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

// Renders rows as a fixed-width table with a header row and a separator
// line, e.g. for the Figure 6-1 / 6-2 commutativity matrices.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // The formatted table, ending with a newline.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ccr

#endif  // CCR_COMMON_STRING_UTIL_H_
