// Copyright 2026 The ccr Authors.

#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

#include "common/macros.h"

namespace ccr {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  CCR_CHECK(needed >= 0);
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  CCR_CHECK_MSG(row.size() == header_.size(),
                "row has %zu cells, header has %zu", row.size(),
                header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace ccr
