// Copyright 2026 The ccr Authors.
//
// Shared temp-path helpers for benches, tests, and harnesses. Every
// scratch file the repo writes honors TMPDIR (sandboxed runners point it
// off /tmp); this is the one place the env-var fallback lives, including
// the empty-string case (`TMPDIR=` must mean "unset", not "cwd-relative
// paths").

#ifndef CCR_COMMON_TEMP_PATH_H_
#define CCR_COMMON_TEMP_PATH_H_

#include <string>
#include <string_view>

namespace ccr {

// $TMPDIR if set and non-empty, else "/tmp". No trailing slash is added.
std::string TempDirRoot();

// Creates a fresh directory `TempDirRoot()/<prefix>XXXXXX` via mkdtemp and
// returns its path; empty string on failure. The caller owns cleanup.
std::string MakeTempDir(std::string_view prefix);

}  // namespace ccr

#endif  // CCR_COMMON_TEMP_PATH_H_
