// Copyright 2026 The ccr Authors.
//
// Assertion and class-annotation macros shared across the library.

#ifndef CCR_COMMON_MACROS_H_
#define CCR_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Aborts the process with a message when `cond` is false. Used for internal
// invariants that indicate a bug in ccr itself (never for user errors, which
// are reported through Status).
#define CCR_CHECK(cond)                                                    \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "CCR_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

// Like CCR_CHECK but with a printf-style message appended.
#define CCR_CHECK_MSG(cond, ...)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "CCR_CHECK failed at %s:%d: %s: ", __FILE__,    \
                   __LINE__, #cond);                                       \
      std::fprintf(stderr, __VA_ARGS__);                                   \
      std::fprintf(stderr, "\n");                                          \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define CCR_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;          \
  TypeName& operator=(const TypeName&) = delete

#endif  // CCR_COMMON_MACROS_H_
