// Copyright 2026 The ccr Authors.
//
// CRC32C (Castagnoli polynomial, as used by iSCSI, ext4, and LevelDB-family
// journals). Software slice-by-8 implementation — fast enough for journal
// framing without depending on SSE4.2 intrinsics being available.

#ifndef CCR_COMMON_CRC32C_H_
#define CCR_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace ccr {

// CRC32C of `n` bytes at `data`.
uint32_t Crc32c(const void* data, size_t n);

// Incremental form: extends `crc` (a previous Crc32c/Crc32cExtend result,
// or 0 for an empty prefix) with `n` more bytes. Crc32cExtend(0, d, n) ==
// Crc32c(d, n).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

}  // namespace ccr

#endif  // CCR_COMMON_CRC32C_H_
