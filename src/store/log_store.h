// Copyright 2026 The ccr Authors.
//
// LogStructuredStore: the always-available file backend of ObjectStore.
// A directory of append-only segments (store.000001, store.000002, ...),
// each a sequence of CRC32C frames in the journal's [len][crc][payload]
// container format:
//
//   frame 0: header  "sto <seq>\n"      — identifies an initialized segment
//   frame N: batch   binary Put/Delete ops, length-prefixed keys/values
//
// One frame per write batch is what makes batches atomic: a crash mid-
// write leaves a torn frame whose checksum fails, and Open drops it —
// either every op of the batch is visible after restart or none is.
// Length-prefixed values mean empty values and arbitrary bytes (including
// NUL and newlines) need no escaping at this layer.
//
// Reads come from an in-memory index (key -> segment/offset/length) built
// by scanning segments in sequence order at Open — later records win — and
// maintained on every batch. Values are served by pread from the segment
// file, so the resident cost of the store is the index, not the data:
// exactly what cold-object eviction needs.
//
// Torn-tail rule (same shape as the journal's): a damaged frame is legal
// only at the physical end of the HIGHEST-numbered segment, where it is
// truncated away; damage followed by any intact frame, or in a lower
// segment, is real corruption and fails Open with kInternal. A segment
// file whose header frame never became durable (crash between creation
// and header sync) is an artifact and is unlinked, provided it is the
// last segment.
//
// Compaction rewrites the OLDEST sealed segment: its still-live records
// are re-appended to the active segment as one batch, synced, and only
// then is the victim unlinked — a crash between the two leaves duplicate
// records that replay resolves (the copy is later in the log and wins).
// Restricting compaction to the oldest segment is what lets tombstones be
// dropped: a delete record in the oldest segment masks nothing older.
//
// Crash points (shared CrashPoints, see txn/journal_io.h):
//   store.before_batch       die before anything is written
//   store.torn_batch         write half the batch frame, then die
//   store.after_batch        batch fully written, die before the ack
//   store.before_sync        die before the kSync fdatasync
//   store.rot.before_seal    die before fsyncing the sealed segment
//   store.rot.before_header_sync  new segment created, header unsynced
//   store.compact.before_rewrite  die before copying live records
//   store.compact.before_unlink   copies durable, victim still present
//   store.compact.before_dirsync  victim unlinked, removal not durable

#ifndef CCR_STORE_LOG_STORE_H_
#define CCR_STORE_LOG_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/object_store.h"
#include "txn/journal_io.h"

namespace ccr {

struct LogStoreOptions {
  // Roll the active segment once it would exceed this size.
  uint64_t max_segment_bytes = 4ull << 20;
  // After a batch, compact the oldest sealed segment if at least this
  // fraction of its record bytes is dead. <= 0 disables auto-compaction
  // (CompactNow still works).
  double compact_dead_fraction = 0.5;
  // Don't auto-compact segments smaller than this (the copy cost would
  // outweigh the reclaim).
  uint64_t min_compact_bytes = 64ull << 10;
  // Optional fault injection (store.* points above). Not owned; may be
  // shared with a SegmentedFileSink / Checkpointer.
  CrashPoints* crash = nullptr;
};

class LogStructuredStore : public ObjectStore {
 public:
  // Scans `dir` (which must exist), repairs the tail, builds the index,
  // and opens a fresh active segment. kInternal on mid-log corruption.
  static StatusOr<std::unique_ptr<LogStructuredStore>> Open(
      const std::string& dir, LogStoreOptions options = {});

  ~LogStructuredStore() override;

  Status ApplyBatch(const StoreWriteBatch& batch,
                    Durability durability) override;
  StatusOr<std::string> Get(const std::string& key) override;
  Status Scan(const std::function<Status(const std::string&,
                                         const std::string&)>& fn) override;
  ObjectStoreStats stats() const override;

  // Compacts the oldest sealed segment regardless of thresholds (no-op
  // when only the active segment exists).
  Status CompactNow();

  // Test-only, in the spirit of MemObjectStore::FailNextBatches: the next
  // frame append writes half its bytes and then reports an injected I/O
  // error, exercising the partial-append rollback path.
  void FailNextAppendPartially();

  const std::string& dir() const { return dir_; }

 private:
  struct Segment {
    uint64_t seq = 0;
    std::string path;
    int fd = -1;
    uint64_t size = 0;       // bytes on disk (== append offset for active)
    uint64_t dead = 0;       // superseded/tombstone record bytes
  };
  struct ValueLoc {
    uint64_t seq = 0;        // owning segment
    uint64_t offset = 0;     // byte offset of the value within the file
    uint32_t vlen = 0;
    uint32_t klen = 0;       // for dead-record accounting
  };

  LogStructuredStore(std::string dir, LogStoreOptions options)
      : dir_(std::move(dir)), options_(options) {}

  Status LoadSegmentLocked(Segment* seg, bool is_last,
                           ObjectStoreStats* stats);
  Status OpenActiveLocked(uint64_t seq);
  Status RotateLocked();
  Status WriteFrameLocked(const std::string& framed);
  // Applies `payload` (a decoded batch) to the index. `seq`/`frame_pos`
  // locate the frame on disk. kInternal on malformed payloads.
  Status IndexBatchLocked(std::string_view payload, uint64_t seq,
                          uint64_t frame_pos);
  Status CompactOldestLocked(bool force);
  Segment* FindSegmentLocked(uint64_t seq);
  void AccountDeadLocked(const ValueLoc& old);

  const std::string dir_;
  const LogStoreOptions options_;

  mutable std::mutex mu_;
  std::vector<Segment> segments_;  // ascending seq; back() is active
  std::unordered_map<std::string, ValueLoc> index_;
  ObjectStoreStats stats_;
  // Set when a failed append could not be rolled back to the last frame
  // boundary: the fd offset no longer matches the indexed log, so any
  // further append would be misframed. Reads of already-indexed frames
  // stay sound (they lie below the boundary), so only writers fail fast.
  bool failed_ = false;
  bool fail_next_append_ = false;  // armed by FailNextAppendPartially
};

}  // namespace ccr

#endif  // CCR_STORE_LOG_STORE_H_
