// Copyright 2026 The ccr Authors.

#include "store/log_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/string_util.h"
#include "txn/journal_format.h"

namespace ccr {
namespace {

constexpr std::string_view kSegmentPrefix = "store.";

std::string StoreSegmentFileName(uint64_t seq) {
  return StrFormat("store.%06llu", static_cast<unsigned long long>(seq));
}

std::optional<uint64_t> ParseSegmentSeq(const std::string& name) {
  if (name.size() <= kSegmentPrefix.size() ||
      std::string_view(name).substr(0, kSegmentPrefix.size()) !=
          kSegmentPrefix) {
    return std::nullopt;
  }
  const std::string digits = name.substr(kSegmentPrefix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

std::string SegmentHeaderPayload(uint64_t seq) {
  return StrFormat("sto %llu\n", static_cast<unsigned long long>(seq));
}

Status SimulatedCrash(std::string_view point) {
  return Status::Unavailable(
      StrFormat("simulated crash at %.*s", static_cast<int>(point.size()),
                point.data()));
}

bool CrashFires(CrashPoints* crash, std::string_view point) {
  return crash != nullptr && crash->Hit(point);
}

Status ErrnoError(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status WriteAll(int fd, std::string_view data) {
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("store segment write failed");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PreadExact(int fd, char* buf, size_t len, uint64_t off) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, buf + done, len - done,
                              static_cast<off_t>(off + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("store segment pread failed");
    }
    if (n == 0) return Status::Internal("store segment shorter than index");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

bool ReadU32(std::string_view in, size_t pos, uint32_t* v) {
  if (pos + 4 > in.size()) return false;
  *v = static_cast<uint32_t>(static_cast<unsigned char>(in[pos])) |
       static_cast<uint32_t>(static_cast<unsigned char>(in[pos + 1])) << 8 |
       static_cast<uint32_t>(static_cast<unsigned char>(in[pos + 2])) << 16 |
       static_cast<uint32_t>(static_cast<unsigned char>(in[pos + 3])) << 24;
  return true;
}

// Binary batch payload: 'P' klen key vlen value | 'D' klen key, with u32
// little-endian length prefixes. Length-prefixing (not escaping) is what
// makes empty and binary values round-trip trivially.
std::string EncodeBatchPayload(const StoreWriteBatch& batch) {
  std::string out;
  for (const StoreOp& op : batch.ops()) {
    out.push_back(op.kind == StoreOp::Kind::kPut ? 'P' : 'D');
    AppendU32(&out, static_cast<uint32_t>(op.key.size()));
    out += op.key;
    if (op.kind == StoreOp::Kind::kPut) {
      AppendU32(&out, static_cast<uint32_t>(op.value.size()));
      out += op.value;
    }
  }
  return out;
}

uint64_t RecordCost(uint32_t klen, uint32_t vlen, bool is_put) {
  return 1 + 4 + klen + (is_put ? 4 + static_cast<uint64_t>(vlen) : 0);
}

}  // namespace

StatusOr<std::unique_ptr<LogStructuredStore>> LogStructuredStore::Open(
    const std::string& dir, LogStoreOptions options) {
  std::unique_ptr<LogStructuredStore> store(
      new LogStructuredStore(dir, options));
  StatusOr<std::vector<std::string>> names = ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<std::pair<uint64_t, std::string>> found;
  for (const std::string& name : *names) {
    if (const std::optional<uint64_t> seq = ParseSegmentSeq(name)) {
      found.emplace_back(*seq, dir + "/" + name);
    }
  }
  std::sort(found.begin(), found.end());

  std::lock_guard<std::mutex> lock(store->mu_);
  for (size_t i = 0; i < found.size(); ++i) {
    Segment seg;
    seg.seq = found[i].first;
    seg.path = found[i].second;
    seg.fd = ::open(seg.path.c_str(), O_RDWR | O_CLOEXEC);
    if (seg.fd < 0) return ErrnoError("cannot open " + seg.path);
    store->segments_.push_back(seg);
    const Status loaded = store->LoadSegmentLocked(
        &store->segments_.back(), /*is_last=*/i + 1 == found.size(),
        &store->stats_);
    if (!loaded.ok()) return loaded;
    if (store->segments_.back().fd < 0) {
      // LoadSegmentLocked unlinked a creation artifact.
      store->segments_.pop_back();
    }
  }
  const uint64_t next_seq =
      store->segments_.empty() ? 1 : store->segments_.back().seq + 1;
  CCR_RETURN_IF_ERROR(store->OpenActiveLocked(next_seq));
  return store;
}

LogStructuredStore::~LogStructuredStore() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Segment& seg : segments_) {
    if (seg.fd >= 0) ::close(seg.fd);
  }
}

Status LogStructuredStore::LoadSegmentLocked(Segment* seg, bool is_last,
                                             ObjectStoreStats* stats) {
  StatusOr<std::string> image = ReadFileImage(seg->path);
  if (!image.ok()) return image.status();
  const std::string_view bytes = *image;

  // Header frame. A file without a durable header is a creation artifact
  // (crash between segment creation and header sync) — legal only as the
  // last segment, where it is unlinked.
  uint32_t header_len = 0;
  const std::string expected_header = SegmentHeaderPayload(seg->seq);
  const bool header_ok =
      IntactJournalFrameAt(bytes, 0, &header_len) &&
      bytes.substr(kJournalFrameHeaderSize, header_len) == expected_header;
  if (!header_ok) {
    if (is_last && !IntactJournalFrameAfter(bytes, 0)) {
      ::close(seg->fd);
      seg->fd = -1;
      if (std::remove(seg->path.c_str()) != 0) {
        return ErrnoError("cannot unlink store artifact " + seg->path);
      }
      CCR_RETURN_IF_ERROR(SyncDir(dir_));
      return Status::OK();
    }
    return Status::Internal("store segment " + seg->path +
                            " has a damaged header");
  }

  size_t pos = kJournalFrameHeaderSize + header_len;
  while (pos < bytes.size()) {
    uint32_t payload_len = 0;
    if (!IntactJournalFrameAt(bytes, pos, &payload_len)) {
      if (IntactJournalFrameAfter(bytes, pos) || !is_last) {
        // Damage followed by an intact frame, or in a sealed mid-log
        // segment, cannot be a torn append — refuse to guess.
        return Status::Internal("store segment " + seg->path +
                                " is corrupt mid-file");
      }
      // Torn tail of the newest segment: physically truncate so the next
      // append starts at a clean boundary.
      if (::ftruncate(seg->fd, static_cast<off_t>(pos)) != 0) {
        return ErrnoError("cannot truncate torn tail of " + seg->path);
      }
      if (::fsync(seg->fd) != 0) {
        return ErrnoError("cannot sync truncated " + seg->path);
      }
      stats->bytes_truncated += bytes.size() - pos;
      break;
    }
    const std::string_view payload =
        bytes.substr(pos + kJournalFrameHeaderSize, payload_len);
    CCR_RETURN_IF_ERROR(IndexBatchLocked(payload, seg->seq,
                                         static_cast<uint64_t>(pos)));
    pos += kJournalFrameHeaderSize + payload_len;
  }
  seg->size = std::min<uint64_t>(pos, bytes.size());
  return Status::OK();
}

Status LogStructuredStore::OpenActiveLocked(uint64_t seq) {
  Segment seg;
  seg.seq = seq;
  seg.path = dir_ + "/" + StoreSegmentFileName(seq);
  seg.fd = ::open(seg.path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (seg.fd < 0) return ErrnoError("cannot create " + seg.path);
  const std::string header = FrameBlob(SegmentHeaderPayload(seq));
  CCR_RETURN_IF_ERROR(WriteAll(seg.fd, header));
  if (CrashFires(options_.crash, "store.rot.before_header_sync")) {
    segments_.push_back(seg);
    return SimulatedCrash("store.rot.before_header_sync");
  }
  if (::fsync(seg.fd) != 0) return ErrnoError("cannot sync " + seg.path);
  CCR_RETURN_IF_ERROR(SyncDir(dir_));
  seg.size = header.size();
  segments_.push_back(seg);
  return Status::OK();
}

Status LogStructuredStore::RotateLocked() {
  Segment& active = segments_.back();
  if (CrashFires(options_.crash, "store.rot.before_seal")) {
    return SimulatedCrash("store.rot.before_seal");
  }
  // Seal: everything appended so far becomes durable before the segment
  // goes read-only — a later batch's sync can then never be reordered
  // ahead of a sealed segment's contents.
  if (::fsync(active.fd) != 0) {
    return ErrnoError("cannot seal " + active.path);
  }
  return OpenActiveLocked(active.seq + 1);
}

Status LogStructuredStore::WriteFrameLocked(const std::string& framed) {
  Segment& active = segments_.back();
  Status written;
  if (fail_next_append_) {
    fail_next_append_ = false;
    (void)WriteAll(active.fd,
                   std::string_view(framed).substr(0, framed.size() / 2));
    written = Status::Internal("injected partial append failure");
  } else {
    written = WriteAll(active.fd, framed);
  }
  if (!written.ok()) {
    // A partial write (ENOSPC/EIO mid-frame) leaves the fd offset ahead
    // of active.size: the next frame would land past where the index
    // says frames start, so point reads (whose value preads carry no CRC)
    // would silently serve wrong bytes, and reopen would refuse the
    // segment as corrupt mid-file. Roll the file back to the last frame
    // boundary; if even that fails, poison all further writes — reads of
    // already-indexed frames stay sound, since they lie below active.size.
    if (::ftruncate(active.fd, static_cast<off_t>(active.size)) != 0 ||
        ::lseek(active.fd, static_cast<off_t>(active.size), SEEK_SET) ==
            static_cast<off_t>(-1)) {
      failed_ = true;
    }
    return written;
  }
  active.size += framed.size();
  stats_.bytes_written += framed.size();
  return Status::OK();
}

Status LogStructuredStore::IndexBatchLocked(std::string_view payload,
                                            uint64_t seq,
                                            uint64_t frame_pos) {
  const uint64_t payload_base = frame_pos + kJournalFrameHeaderSize;
  size_t pos = 0;
  while (pos < payload.size()) {
    const char kind = payload[pos];
    if (kind != 'P' && kind != 'D') {
      return Status::Internal("malformed store batch op kind");
    }
    ++pos;
    uint32_t klen = 0;
    if (!ReadU32(payload, pos, &klen) || pos + 4 + klen > payload.size()) {
      return Status::Internal("malformed store batch key");
    }
    pos += 4;
    const std::string key(payload.substr(pos, klen));
    pos += klen;
    if (kind == 'P') {
      uint32_t vlen = 0;
      if (!ReadU32(payload, pos, &vlen) || pos + 4 + vlen > payload.size()) {
        return Status::Internal("malformed store batch value");
      }
      pos += 4;
      ValueLoc loc;
      loc.seq = seq;
      loc.offset = payload_base + pos;
      loc.vlen = vlen;
      loc.klen = klen;
      pos += vlen;
      auto it = index_.find(key);
      if (it != index_.end()) {
        AccountDeadLocked(it->second);
        it->second = loc;
      } else {
        index_.emplace(key, loc);
      }
      ++stats_.puts;
    } else {
      auto it = index_.find(key);
      if (it != index_.end()) {
        AccountDeadLocked(it->second);
        index_.erase(it);
      }
      // The tombstone record itself is reclaimable the moment it becomes
      // the oldest segment's content.
      if (Segment* s = FindSegmentLocked(seq)) {
        const uint64_t cost = RecordCost(klen, 0, false);
        s->dead += cost;
        stats_.dead_bytes += cost;
      }
      ++stats_.deletes;
    }
  }
  return Status::OK();
}

Status LogStructuredStore::ApplyBatch(const StoreWriteBatch& batch,
                                      Durability durability) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.crash != nullptr && options_.crash->dead()) {
    return Status::Unavailable("store is dead (crash point fired)");
  }
  if (failed_) {
    return Status::Internal(
        "store is write-poisoned: a failed append could not be rolled back");
  }
  for (const StoreOp& op : batch.ops()) {
    // The frame's length prefixes are u32: a larger op would silently
    // truncate its prefix and misframe the payload on replay.
    if (op.key.size() > std::numeric_limits<uint32_t>::max() ||
        op.value.size() > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument(
          "store op key/value exceeds the 4 GiB frame limit");
    }
  }
  if (CrashFires(options_.crash, "store.before_batch")) {
    return SimulatedCrash("store.before_batch");
  }
  const std::string framed = FrameBlob(EncodeBatchPayload(batch));
  Segment* active = &segments_.back();
  if (active->size + framed.size() > options_.max_segment_bytes &&
      active->size > FrameBlob(SegmentHeaderPayload(active->seq)).size()) {
    CCR_RETURN_IF_ERROR(RotateLocked());
  }
  active = &segments_.back();
  if (CrashFires(options_.crash, "store.torn_batch")) {
    (void)WriteAll(active->fd,
                   std::string_view(framed).substr(0, framed.size() / 2));
    return SimulatedCrash("store.torn_batch");
  }
  const uint64_t frame_pos = active->size;
  CCR_RETURN_IF_ERROR(WriteFrameLocked(framed));
  CCR_RETURN_IF_ERROR(IndexBatchLocked(
      std::string_view(framed).substr(kJournalFrameHeaderSize), active->seq,
      frame_pos));
  ++stats_.batches;
  if (CrashFires(options_.crash, "store.after_batch")) {
    return SimulatedCrash("store.after_batch");
  }
  if (durability == Durability::kSync) {
    if (CrashFires(options_.crash, "store.before_sync")) {
      return SimulatedCrash("store.before_sync");
    }
    if (::fdatasync(active->fd) != 0) {
      return ErrnoError("cannot sync " + active->path);
    }
    ++stats_.syncs;
  }
  if (options_.compact_dead_fraction > 0) {
    CCR_RETURN_IF_ERROR(CompactOldestLocked(/*force=*/false));
  }
  return Status::OK();
}

StatusOr<std::string> LogStructuredStore::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.gets;
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.get_misses;
    return Status::NotFound("no such key: " + key);
  }
  Segment* seg = FindSegmentLocked(it->second.seq);
  if (seg == nullptr || seg->fd < 0) {
    return Status::Internal("index points at a missing store segment");
  }
  std::string value(it->second.vlen, '\0');
  CCR_RETURN_IF_ERROR(
      PreadExact(seg->fd, value.data(), value.size(), it->second.offset));
  ++stats_.get_hits;
  stats_.bytes_read += value.size();
  return value;
}

Status LogStructuredStore::Scan(
    const std::function<Status(const std::string&, const std::string&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, loc] : index_) {
    Segment* seg = FindSegmentLocked(loc.seq);
    if (seg == nullptr || seg->fd < 0) {
      return Status::Internal("index points at a missing store segment");
    }
    std::string value(loc.vlen, '\0');
    CCR_RETURN_IF_ERROR(
        PreadExact(seg->fd, value.data(), value.size(), loc.offset));
    stats_.bytes_read += value.size();
    CCR_RETURN_IF_ERROR(fn(key, value));
  }
  return Status::OK();
}

Status LogStructuredStore::CompactNow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.crash != nullptr && options_.crash->dead()) {
    return Status::Unavailable("store is dead (crash point fired)");
  }
  if (failed_) {
    return Status::Internal(
        "store is write-poisoned: a failed append could not be rolled back");
  }
  return CompactOldestLocked(/*force=*/true);
}

void LogStructuredStore::FailNextAppendPartially() {
  std::lock_guard<std::mutex> lock(mu_);
  fail_next_append_ = true;
}

Status LogStructuredStore::CompactOldestLocked(bool force) {
  if (segments_.size() < 2) return Status::OK();  // only the active segment
  Segment& victim = segments_.front();
  const uint64_t header_bytes =
      FrameBlob(SegmentHeaderPayload(victim.seq)).size();
  const uint64_t record_bytes =
      victim.size > header_bytes ? victim.size - header_bytes : 0;
  if (!force) {
    if (record_bytes < options_.min_compact_bytes) return Status::OK();
    if (static_cast<double>(victim.dead) <
        options_.compact_dead_fraction * static_cast<double>(record_bytes)) {
      return Status::OK();
    }
  }
  if (CrashFires(options_.crash, "store.compact.before_rewrite")) {
    return SimulatedCrash("store.compact.before_rewrite");
  }

  // Copy the victim's still-live records to the end of the log. The copy
  // must be durable BEFORE the victim is unlinked; between the two steps a
  // crash leaves duplicates, which replay resolves (the later copy wins).
  StoreWriteBatch live;
  for (const auto& [key, loc] : index_) {
    if (loc.seq != victim.seq) continue;
    std::string value(loc.vlen, '\0');
    CCR_RETURN_IF_ERROR(
        PreadExact(victim.fd, value.data(), value.size(), loc.offset));
    live.Put(key, std::move(value));
  }
  if (!live.empty()) {
    Segment* active = &segments_.back();
    const uint64_t frame_pos = active->size;
    const std::string framed = FrameBlob(EncodeBatchPayload(live));
    CCR_RETURN_IF_ERROR(WriteFrameLocked(framed));
    CCR_RETURN_IF_ERROR(IndexBatchLocked(
        std::string_view(framed).substr(kJournalFrameHeaderSize),
        active->seq, frame_pos));
    if (::fdatasync(active->fd) != 0) {
      return ErrnoError("cannot sync compaction copy into " + active->path);
    }
    ++stats_.syncs;
  }

  if (CrashFires(options_.crash, "store.compact.before_unlink")) {
    return SimulatedCrash("store.compact.before_unlink");
  }
  ::close(victim.fd);
  if (std::remove(victim.path.c_str()) != 0) {
    return ErrnoError("cannot unlink compacted segment " + victim.path);
  }
  stats_.dead_bytes -= std::min(stats_.dead_bytes, victim.dead);
  segments_.erase(segments_.begin());
  if (CrashFires(options_.crash, "store.compact.before_dirsync")) {
    return SimulatedCrash("store.compact.before_dirsync");
  }
  CCR_RETURN_IF_ERROR(SyncDir(dir_));
  ++stats_.compactions;
  return Status::OK();
}

LogStructuredStore::Segment* LogStructuredStore::FindSegmentLocked(
    uint64_t seq) {
  for (Segment& seg : segments_) {
    if (seg.seq == seq) return &seg;
  }
  return nullptr;
}

void LogStructuredStore::AccountDeadLocked(const ValueLoc& old) {
  const uint64_t cost = RecordCost(old.klen, old.vlen, true);
  if (Segment* seg = FindSegmentLocked(old.seq)) seg->dead += cost;
  stats_.dead_bytes += cost;
}

ObjectStoreStats LogStructuredStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ObjectStoreStats out = stats_;
  out.live_keys = index_.size();
  out.segments = segments_.size();
  return out;
}

}  // namespace ccr
