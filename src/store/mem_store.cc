// Copyright 2026 The ccr Authors.

#include "store/mem_store.h"

#include "common/string_util.h"

namespace ccr {
namespace {

Status SimulatedCrash(std::string_view point) {
  return Status::Unavailable(
      StrFormat("simulated crash at %.*s", static_cast<int>(point.size()),
                point.data()));
}

}  // namespace

Status MemObjectStore::ApplyBatch(const StoreWriteBatch& batch,
                                  Durability durability) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fail_batches_ > 0) {
    --fail_batches_;
    return Status::Unavailable("injected store batch failure");
  }
  if (crash_ != nullptr && crash_->Hit("store.before_batch")) {
    return SimulatedCrash("store.before_batch");
  }
  if (crash_ != nullptr && crash_->Hit("store.torn_batch")) {
    // A torn batch never becomes visible: the log-structured backend drops
    // the half-written frame at Open (CRC mismatch), and the mock mirrors
    // that by applying nothing. Atomicity is the contract under test.
    return SimulatedCrash("store.torn_batch");
  }
  for (const StoreOp& op : batch.ops()) {
    if (op.kind == StoreOp::Kind::kPut) {
      map_[op.key] = op.value;
      ++stats_.puts;
      stats_.bytes_written += op.key.size() + op.value.size();
    } else {
      map_.erase(op.key);
      ++stats_.deletes;
    }
  }
  ++stats_.batches;
  if (crash_ != nullptr && crash_->Hit("store.after_batch")) {
    // Batch applied (and, being memory, "durable"), but the caller never
    // hears the ack — the die-after-apply crash point.
    return SimulatedCrash("store.after_batch");
  }
  if (durability == Durability::kSync) {
    if (crash_ != nullptr && crash_->Hit("store.before_sync")) {
      return SimulatedCrash("store.before_sync");
    }
    ++stats_.syncs;
  }
  stats_.live_keys = map_.size();
  return Status::OK();
}

StatusOr<std::string> MemObjectStore::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fail_gets_ > 0) {
    --fail_gets_;
    return Status::Unavailable("injected store get failure");
  }
  if (crash_ != nullptr && crash_->dead()) {
    return Status::Unavailable("store is dead (crash point fired)");
  }
  ++stats_.gets;
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.get_misses;
    return Status::NotFound("no such key: " + key);
  }
  ++stats_.get_hits;
  stats_.bytes_read += it->second.size();
  return it->second;
}

Status MemObjectStore::Scan(
    const std::function<Status(const std::string&, const std::string&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crash_ != nullptr && crash_->dead()) {
    return Status::Unavailable("store is dead (crash point fired)");
  }
  for (const auto& [key, value] : map_) {
    stats_.bytes_read += value.size();
    CCR_RETURN_IF_ERROR(fn(key, value));
  }
  return Status::OK();
}

ObjectStoreStats MemObjectStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ObjectStoreStats out = stats_;
  out.live_keys = map_.size();
  return out;
}

void MemObjectStore::FailNextBatches(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_batches_ = n;
}

void MemObjectStore::FailNextGets(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_gets_ = n;
}

size_t MemObjectStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace ccr
