// Copyright 2026 The ccr Authors.
//
// MemObjectStore: the in-memory ObjectStore mock for tests and fault
// injection. Same atomic-batch contract as the real backend, plus two
// injection surfaces:
//
//   * a shared CrashPoints set (the same store.* names the log-structured
//     backend fires), so eviction/checkpoint code paths can be crashed at
//     the store boundary without touching a disk;
//   * countdown failure injection (FailNextBatches / FailNextGets), for
//     plain error-path tests where the store should stay alive.
//
// "Dying" at a crash point follows the CrashPoints contract: the first
// armed hit and every call after it fail kUnavailable, like a process
// that stopped mid-operation.

#ifndef CCR_STORE_MEM_STORE_H_
#define CCR_STORE_MEM_STORE_H_

#include <map>
#include <mutex>
#include <string>

#include "store/object_store.h"
#include "txn/journal_io.h"

namespace ccr {

class MemObjectStore : public ObjectStore {
 public:
  // `crash` (optional, not owned) must outlive the store.
  explicit MemObjectStore(CrashPoints* crash = nullptr) : crash_(crash) {}

  Status ApplyBatch(const StoreWriteBatch& batch,
                    Durability durability) override;
  StatusOr<std::string> Get(const std::string& key) override;
  Status Scan(const std::function<Status(const std::string&,
                                         const std::string&)>& fn) override;
  ObjectStoreStats stats() const override;

  // The next `n` ApplyBatch / Get calls fail kUnavailable without
  // touching the map (batches are not applied at all — still atomic).
  void FailNextBatches(int n);
  void FailNextGets(int n);

  size_t size() const;

 private:
  CrashPoints* const crash_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> map_;
  ObjectStoreStats stats_;
  int fail_batches_ = 0;
  int fail_gets_ = 0;
};

}  // namespace ccr

#endif  // CCR_STORE_MEM_STORE_H_
