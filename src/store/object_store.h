// Copyright 2026 The ccr Authors.
//
// ObjectStore: the persistent storage tier behind the ADT layer. The
// engine's durability story so far ends at the journal — object state
// lives only in memory and is rebuilt by replay — so the dataset can
// never exceed RAM and checkpoints land in ad-hoc monolithic image
// files. The store closes that gap with a deliberately tiny contract,
// in the style of an embedded-KV adapter (write batches applied
// atomically at commit/checkpoint time, point reads, one scan for
// restart):
//
//   * ApplyBatch — a set of Put/Delete ops made visible all-or-nothing.
//     With Durability::kSync the batch is crash-durable before the call
//     returns (the checkpoint path); with kBuffered it may sit in OS
//     buffers (the eviction path — the journal still covers every record
//     an eviction image reflects, so a lost buffered image costs replay
//     time, never correctness). Implementations must preserve append
//     order: syncing a later batch makes every earlier batch durable
//     too, which is what lets a drop's buffered key-delete never be
//     reordered after a later checkpoint's sync.
//   * Get — point read; kNotFound when the key is absent.
//   * Scan — every live key/value pair, for restart image loading.
//
// The store speaks only opaque bytes. Everything above it goes through
// the ADT state codec (EncodeState/DecodeState) — the backend never
// sees engine structure, which is what keeps it pluggable (log-
// structured file store, in-memory mock, some day a real embedded KV).
// Key/value framing for object images lives in txn/checkpoint.h.

#ifndef CCR_STORE_OBJECT_STORE_H_
#define CCR_STORE_OBJECT_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ccr {

// One operation of a write batch.
struct StoreOp {
  enum class Kind { kPut, kDelete };
  Kind kind = Kind::kPut;
  std::string key;
  std::string value;  // unused for kDelete
};

// An ordered set of Put/Delete ops applied atomically: after a crash
// either every op of the batch is visible or none is. Later ops win over
// earlier ops on the same key within one batch.
class StoreWriteBatch {
 public:
  void Put(std::string key, std::string value) {
    ops_.push_back({StoreOp::Kind::kPut, std::move(key), std::move(value)});
  }
  void Delete(std::string key) {
    ops_.push_back({StoreOp::Kind::kDelete, std::move(key), {}});
  }
  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }
  const std::vector<StoreOp>& ops() const { return ops_; }

 private:
  std::vector<StoreOp> ops_;
};

// Cumulative backend counters (all monotone; zero-initialized).
struct ObjectStoreStats {
  uint64_t batches = 0;        // ApplyBatch calls that reached the backend
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t gets = 0;
  uint64_t get_hits = 0;
  uint64_t get_misses = 0;
  uint64_t syncs = 0;          // kSync batches (plus explicit syncs)
  uint64_t bytes_written = 0;  // framed batch bytes appended
  uint64_t bytes_read = 0;     // value bytes served by Get/Scan
  uint64_t live_keys = 0;      // current index size
  // Log-structured backend only:
  uint64_t segments = 0;       // segment files currently on disk
  uint64_t dead_bytes = 0;     // superseded record bytes awaiting compaction
  uint64_t compactions = 0;    // segment rewrites completed
  uint64_t bytes_truncated = 0;  // torn tail bytes dropped at Open
};

class ObjectStore {
 public:
  enum class Durability {
    kSync,      // batch is crash-durable before ApplyBatch returns
    kBuffered,  // batch may be lost to a crash until a later sync covers it
  };

  virtual ~ObjectStore() = default;

  // Applies `batch` atomically (all-or-nothing under crashes).
  virtual Status ApplyBatch(const StoreWriteBatch& batch,
                            Durability durability) = 0;

  // Point read. kNotFound when absent; any other non-OK is a backend
  // failure.
  virtual StatusOr<std::string> Get(const std::string& key) = 0;

  // Visits every live key/value pair (no ordering guarantee). Stops and
  // returns the first non-OK `fn` result.
  virtual Status Scan(
      const std::function<Status(const std::string& key,
                                 const std::string& value)>& fn) = 0;

  virtual ObjectStoreStats stats() const = 0;
};

}  // namespace ccr

#endif  // CCR_STORE_OBJECT_STORE_H_
